//! The `sweep` CLI: run an experiment grid across the workload suite on a
//! work-stealing worker pool, with trace caching and a resumable store.
//!
//! ```text
//! sweep [--out DIR] [--workers N] [--frames N] [--width W] [--height H]
//!       [--scenes a,b,…|all] [--tile-sizes 8,16,32] [--sig-bits 16,32]
//!       [--distances 1,2] [--refresh none,8] [--binning bbox,exact]
//!       [--ot-depths 4,16] [--l2-kb 64,256] [--sig-compare-cycles 2,4]
//!       [--trace-dir DIR] [--no-store] [--no-group] [--quiet]
//! sweep report [--store DIR]
//! ```
//!
//! Cells sharing a render key — the same (scene, screen, tile size,
//! binning) — are rasterized **once** and share the recorded render log;
//! only the evaluation stage runs per cell (`--no-group` disables this).
//!
//! Re-running with the same `--out` resumes: completed cells are skipped and
//! `results.csv` is regenerated over the full grid. The CSV is byte-identical
//! for any `--workers` value, across kill/resume, and with or without render
//! grouping.
//!
//! `sweep report` digests an existing store into per-axis marginal
//! mean/median RE-speedup tables.

use std::path::PathBuf;
use std::process::ExitCode;

use re_sweep::{ExperimentGrid, SweepOptions};

const USAGE: &str = "\
sweep — parallel experiment orchestration for the RE reproduction

USAGE:
    sweep [OPTIONS]
    sweep report [--store DIR]

OPTIONS:
    --out DIR           result-store directory (default: sweep-out; resumable)
    --no-store          run in memory only, print the CSV to stdout
    --workers N         worker threads (default: all hardware threads)
    --frames N          frames per cell (default: 24)
    --width W           screen width (default: 400)
    --height H          screen height (default: 256)
    --scenes LIST       comma-separated aliases, or `all` (default: all)
    --tile-sizes LIST   tile-edge axis (default: 16)
    --sig-bits LIST     signature-width axis, bits 1..=32 (default: 32)
    --distances LIST    compare-distance axis (default: 2)
    --refresh LIST      refresh-period axis; `none` or a frame count (default: none)
    --binning LIST      binning axis: bbox,exact (default: bbox)
    --ot-depths LIST    Signature Unit OT-queue depth axis (default: 16)
    --l2-kb LIST        L2 capacity axis in KiB (default: 256)
    --sig-compare-cycles LIST
                        Signature Buffer compare-cost axis in cycles (default: 4)
    --trace-dir DIR     cache .retrace captures here (default: <out>/traces)
    --no-group          render per cell instead of once per render key
    --quiet             no per-cell progress on stderr
    -h, --help          this text

REPORT:
    sweep report [--store DIR]
                        per-axis marginal mean/median RE speedup tables from
                        an existing store (default store: sweep-out)
";

struct Args {
    grid: ExperimentGrid,
    opts: SweepOptions,
    out: PathBuf,
    store: bool,
}

/// First-occurrence-order dedup: `--tile-sizes 16,16` must not enumerate
/// (and fully simulate) the same grid cell twice.
fn dedup_in_order<T: PartialEq>(xs: Vec<T>) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(xs.len());
    for x in xs {
        if !out.contains(&x) {
            out.push(x);
        }
    }
    out
}

fn parse_list<T: std::str::FromStr + PartialEq>(flag: &str, value: &str) -> Result<Vec<T>, String> {
    value
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<T>()
                .map_err(|_| format!("{flag}: bad value `{s}`"))
        })
        .collect::<Result<Vec<T>, String>>()
        .map(dedup_in_order)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut grid = ExperimentGrid::default();
    let mut opts = SweepOptions::default();
    let mut out = PathBuf::from("sweep-out");
    let mut store = true;
    let mut trace_dir: Option<PathBuf> = None;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or(format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--out" => out = PathBuf::from(value()?),
            "--no-store" => store = false,
            "--workers" => opts.workers = value()?.parse().map_err(|_| "--workers: bad value")?,
            "--frames" => {
                grid.frames = value()?.parse().map_err(|_| "--frames: bad value")?;
                if grid.frames == 0 {
                    return Err("--frames: at least one frame is required".into());
                }
            }
            "--width" => grid.width = value()?.parse().map_err(|_| "--width: bad value")?,
            "--height" => grid.height = value()?.parse().map_err(|_| "--height: bad value")?,
            "--scenes" => {
                let v = value()?;
                if v != "all" {
                    grid.scenes =
                        dedup_in_order(v.split(',').map(|s| s.trim().to_string()).collect());
                    for s in &grid.scenes {
                        if re_workloads::by_alias(s).is_none() {
                            return Err(format!("--scenes: unknown alias `{s}`"));
                        }
                    }
                }
            }
            "--tile-sizes" => {
                grid.tile_sizes = parse_list(flag, value()?)?;
                if grid.tile_sizes.contains(&0) {
                    return Err("--tile-sizes: tile edges must be at least 1".into());
                }
            }
            "--sig-bits" => {
                grid.sig_bits = parse_list(flag, value()?)?;
                if grid.sig_bits.iter().any(|&b| !(1..=32).contains(&b)) {
                    return Err("--sig-bits: values must be in 1..=32".into());
                }
            }
            "--distances" => {
                grid.compare_distances = parse_list(flag, value()?)?;
                if grid.compare_distances.contains(&0) {
                    return Err("--distances: compare distance must be at least 1".into());
                }
            }
            "--refresh" => {
                grid.refresh_periods = value()?
                    .split(',')
                    .map(|s| match s.trim() {
                        "none" | "0" => Ok(None),
                        s => s
                            .parse::<usize>()
                            .map(Some)
                            .map_err(|_| format!("--refresh: bad value `{s}`")),
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(dedup_in_order)?;
            }
            "--binning" => {
                grid.binnings = value()?
                    .split(',')
                    .map(|s| {
                        re_sweep::parse_binning(s.trim())
                            .ok_or(format!("--binning: bad value `{s}` (bbox|exact)"))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(dedup_in_order)?;
            }
            "--ot-depths" => {
                grid.ot_depths = parse_list(flag, value()?)?;
                if grid.ot_depths.contains(&0) {
                    return Err("--ot-depths: the OT queue needs at least one entry".into());
                }
            }
            "--l2-kb" => {
                grid.l2_kb = parse_list(flag, value()?)?;
                // Lower bound: one full cache set; upper: `kb << 10` must
                // stay in u32 for CacheGeometry::size_bytes.
                if grid.l2_kb.iter().any(|&kb| !(1..=4_194_303).contains(&kb)) {
                    return Err("--l2-kb: values must be in 1..=4194303".into());
                }
            }
            "--sig-compare-cycles" => {
                grid.sig_compare_cycles = parse_list(flag, value()?)?;
            }
            "--trace-dir" => trace_dir = Some(PathBuf::from(value()?)),
            "--no-group" => opts.group_renders = false,
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    // With a store, captures default to living beside it; a memory-only run
    // caches traces only when a directory was explicitly given.
    opts.trace_dir = match (store, trace_dir) {
        (_, Some(dir)) => Some(dir),
        (true, None) => Some(out.join("traces")),
        (false, None) => None,
    };
    Ok(Args {
        grid,
        opts,
        out,
        store,
    })
}

fn run_report(argv: &[String]) -> ExitCode {
    let mut store = PathBuf::from("sweep-out");
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--store" => match it.next() {
                Some(dir) => store = PathBuf::from(dir),
                None => {
                    eprintln!("sweep report: --store needs a value");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sweep report: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    match re_sweep::read_records(&store) {
        Ok(records) if records.is_empty() => {
            eprintln!(
                "sweep report: store at {} holds no records",
                store.display()
            );
            ExitCode::FAILURE
        }
        Ok(records) => {
            print!("{}", re_sweep::render_report(&records));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sweep report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("report") {
        return run_report(&argv[1..]);
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };

    let cells = args.grid.cell_count();
    let scenes = args.grid.scenes.len();
    eprintln!(
        "[sweep] grid: {cells} cells ({scenes} scenes × {} configs), {} frames each",
        cells / scenes.max(1),
        args.grid.frames
    );

    if args.store {
        match re_sweep::run_grid_with_store(&args.grid, &args.opts, &args.out) {
            Ok(summary) => {
                eprintln!(
                    "[sweep] done: {} ran, {} resumed → {}",
                    summary.ran,
                    summary.resumed,
                    summary.csv_path.display()
                );
                print_highlights(&summary.records);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sweep: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match re_sweep::run_grid(&args.grid, &args.opts) {
            Ok(outcomes) => {
                let records: Vec<re_sweep::CellRecord> = outcomes
                    .iter()
                    .map(|o| re_sweep::CellRecord::from_run(&o.cell, &o.report))
                    .collect();
                print!("{}", re_sweep::render_csv(&records));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sweep: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

/// A short stdout digest: per-scene best/worst speedup across the grid.
fn print_highlights(records: &[re_sweep::CellRecord]) {
    let mut scenes: Vec<&str> = records.iter().map(|r| r.scene.as_str()).collect();
    scenes.sort_unstable();
    scenes.dedup();
    println!(
        "{:<6} {:>9} {:>9} {:>10} {:>7}",
        "scene", "best", "worst", "skip(best)", "cells"
    );
    for scene in scenes {
        let of_scene: Vec<&re_sweep::CellRecord> =
            records.iter().filter(|r| r.scene == scene).collect();
        let best = of_scene
            .iter()
            .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .expect("non-empty");
        let worst = of_scene
            .iter()
            .min_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .expect("non-empty");
        println!(
            "{:<6} {:>8.2}x {:>8.2}x {:>9.1}% {:>7}",
            scene,
            best.speedup(),
            worst.speedup(),
            best.skip_pct(),
            of_scene.len()
        );
    }
}
