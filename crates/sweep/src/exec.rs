//! Plan execution: the [`Executor`] trait, its in-process
//! [`ThreadExecutor`], and the [`SweepObserver`] progress-event channel.
//!
//! An executor takes a compiled [`SweepPlan`] plus the captured traces and
//! runs the plan's jobs, returning outcomes in cell-id order. The contract
//! every implementation must keep:
//!
//! * **render-once** — with grouping, each [`crate::plan::RenderJob`] runs
//!   Stage A exactly once and its log is shared by the job's eval cells;
//! * **deterministic output** — outcomes are returned in cell-id order and
//!   each report is a pure function of the cell, so results are
//!   byte-identical across worker counts, scheduling, and executors.
//!
//! [`ThreadExecutor`] is the std-thread work-stealing implementation (the
//! engine's default); an async executor is the planned second
//! implementation — the plan/executor split is exactly that seam.
//!
//! Progress is reported through [`SweepObserver`] events instead of
//! hardwired `eprintln!`: the CLI installs [`StderrObserver`] (the classic
//! `[sweep] …` lines) plus a [`crate::events::JsonlObserver`] writing the
//! machine-readable `events.jsonl`, embedders can install their own, and
//! [`NullObserver`] silences everything (what `quiet` does).
//!
//! Events carry timing payloads (durations, worker ids) and the executor
//! emits a periodic [`SweepEvent::Progress`] heartbeat, so an observer
//! stream is enough to reconstruct where wall-clock went — that is what
//! `sweep profile` does ([`crate::profile`]). The same stage timings are
//! recorded into the [`re_obs`] registry histograms
//! (`sweep.stage.*`), and cache traffic into its counters
//! (`sweep.relog.*`, `sweep.artifacts.*`).

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use re_core::render::RenderLog;
use re_core::RunReport;
use re_obs::names;
use re_obs::Stopwatch;
use re_trace::Trace;

use crate::engine::{render_key_log_parallel, run_cell, CellOutcome};
use crate::grid::Cell;
use crate::plan::{ShardSpec, SweepPlan};
use crate::pool;

/// One progress event of a running sweep.
///
/// Events carry every number an observer could want to display, so
/// observers stay stateless formatters.
#[derive(Debug, Clone)]
pub enum SweepEvent<'a> {
    /// A workload's trace is being captured (or loaded from the cache).
    CaptureStart {
        /// Workload alias.
        scene: &'static str,
        /// Frames captured.
        frames: usize,
    },
    /// A workload's trace is ready.
    CaptureDone {
        /// Workload alias.
        scene: &'static str,
        /// Frames captured.
        frames: usize,
        /// Capture (or cache-load) duration.
        duration: Duration,
    },
    /// A grouped execution is starting: `cells` eval jobs share
    /// `render_jobs` Stage A renders.
    GroupStart {
        /// Eval jobs in the plan.
        cells: usize,
        /// Render jobs in the plan.
        render_jobs: usize,
        /// Worker threads executing the plan.
        workers: usize,
        /// Which shard of the full plan this is (`None` = unsharded).
        shard: Option<ShardSpec>,
    },
    /// A render job is starting Stage A.
    RenderStart {
        /// Workload alias of the render key.
        scene: &'static str,
        /// Tile edge of the render key.
        tile_size: u32,
        /// Worker running the render.
        worker: usize,
    },
    /// A render job finished Stage A.
    RenderDone {
        /// Workload alias of the render key.
        scene: &'static str,
        /// Tile edge of the render key.
        tile_size: u32,
        /// Worker that ran the render.
        worker: usize,
        /// Frames rendered.
        frames: usize,
        /// Stage A duration.
        duration: Duration,
    },
    /// One chunk of a frame-parallel Stage A render finished. Emitted
    /// after the whole render completes (one event per chunk, in chunk
    /// order, right before the job's [`RenderDone`](Self::RenderDone)) —
    /// the per-chunk durations are what `sweep profile` computes
    /// parallel efficiency from. Serial renders emit none.
    RenderChunkDone {
        /// Workload alias of the render key.
        scene: &'static str,
        /// Tile edge of the render key.
        tile_size: u32,
        /// Worker that owned the render job.
        worker: usize,
        /// Chunk index (0-based, frame order).
        chunk: usize,
        /// Chunks the render was split into.
        chunks: usize,
        /// Frames this chunk rendered.
        frames: usize,
        /// The chunk's render duration.
        duration: Duration,
    },
    /// A render job is satisfied by a cached `.relog`: its cells replay
    /// the artifact from disk and Stage A never runs (emitted once per
    /// job, by the first cell to reach it).
    RenderLogReplay {
        /// Workload alias of the render key.
        scene: &'static str,
        /// Tile edge of the render key.
        tile_size: u32,
        /// Worker that reached the job first.
        worker: usize,
    },
    /// A freshly rendered log was persisted to the render-log cache;
    /// future resumes and re-executions of this key will skip Stage A.
    RenderLogSaved {
        /// Workload alias of the render key.
        scene: &'static str,
        /// Tile edge of the render key.
        tile_size: u32,
        /// Size of the artifact on disk.
        bytes: u64,
    },
    /// One cell's Stage B (and store commit) finished. Chattier than
    /// [`CellDone`](Self::CellDone) — this is the per-cell timing record
    /// the run log and `sweep profile` are built from; the stderr
    /// observer ignores it.
    EvalDone {
        /// The cell's stable id.
        cell: usize,
        /// The cell's workload alias.
        scene: &'static str,
        /// Worker that evaluated the cell.
        worker: usize,
        /// Whether Stage B streamed a cached `.relog` (true) or evaluated
        /// in memory (false).
        replayed: bool,
        /// Evaluation duration. For a replayed cell this includes the
        /// artifact's disk read; for the ungrouped per-cell path it is
        /// the whole monolithic (render + evaluate) pipeline.
        eval: Duration,
        /// Store-commit (`on_done`) duration.
        store: Duration,
    },
    /// One cell finished.
    CellDone {
        /// Cells finished so far (this execution).
        done: usize,
        /// Cells in this execution.
        total: usize,
        /// The cell's human-readable label.
        label: &'a str,
        /// Mean completion rate since the execution started.
        cells_per_sec: f64,
        /// Time since the execution started.
        elapsed: Duration,
        /// Estimated time to completion, from the rate over the last few
        /// completions (windowed, so it tracks the current mix of cheap
        /// and expensive cells instead of the since-start mean). `None`
        /// until enough completions have accumulated.
        eta: Option<Duration>,
    },
    /// Periodic heartbeat (and one final tick when the execution ends),
    /// emitted by a watchdog thread even while every worker is busy
    /// inside a long render — this is what keeps `events.jsonl` alive
    /// for tailing tools.
    Progress {
        /// Cells finished so far (this execution).
        done: usize,
        /// Cells in this execution.
        total: usize,
        /// Time since the execution started.
        elapsed: Duration,
        /// Mean completion rate since the execution started.
        cells_per_sec: f64,
        /// Windowed ETA (see [`CellDone::eta`](Self::CellDone)).
        eta: Option<Duration>,
    },
    /// A store run found `resumed` cells already complete and will run the
    /// remaining `pending`.
    StoreResume {
        /// Cells already in the store.
        resumed: usize,
        /// Cells left to run.
        pending: usize,
    },
}

/// Receives [`SweepEvent`]s from a running sweep.
///
/// Carried in [`crate::SweepOptions`]; must be `Send + Sync` because
/// workers emit events concurrently.
pub trait SweepObserver: Send + Sync {
    /// Called for every event, possibly from multiple threads at once.
    fn on_event(&self, event: &SweepEvent<'_>);
}

/// Formats a duration as compact seconds (`12.3s`, `0.4s`).
fn fmt_secs(d: Duration) -> String {
    format!("{:.1}s", d.as_secs_f64())
}

/// Formats an optional ETA (`eta 12.3s` / `eta -`).
fn fmt_eta(eta: Option<Duration>) -> String {
    match eta {
        Some(d) => format!("eta {}", fmt_secs(d)),
        None => "eta -".to_string(),
    }
}

/// The classic stderr progress lines (`[sweep] …`) — the default observer
/// of a non-quiet sweep.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrObserver;

impl SweepObserver for StderrObserver {
    fn on_event(&self, event: &SweepEvent<'_>) {
        match *event {
            SweepEvent::CaptureStart { scene, frames } => {
                eprintln!("[sweep] capturing {scene} ({frames} frames)…");
            }
            SweepEvent::CaptureDone {
                scene, duration, ..
            } => {
                eprintln!("[sweep] captured {scene} in {}", fmt_secs(duration));
            }
            SweepEvent::GroupStart {
                cells,
                render_jobs,
                workers,
                shard,
            } => {
                let shard = match shard {
                    Some(s) => format!(", shard {s}"),
                    None => String::new(),
                };
                eprintln!(
                    "[sweep] render grouping: {cells} cells share {render_jobs} render keys \
                     ({workers} workers{shard})"
                );
            }
            SweepEvent::RenderStart {
                scene, tile_size, ..
            } => {
                eprintln!("[sweep] rendering {scene} ts{tile_size}…");
            }
            SweepEvent::RenderDone {
                scene,
                tile_size,
                duration,
                ..
            } => {
                eprintln!(
                    "[sweep] rendered {scene} ts{tile_size} in {}",
                    fmt_secs(duration)
                );
            }
            SweepEvent::RenderChunkDone {
                scene,
                tile_size,
                chunk,
                chunks,
                frames,
                duration,
                ..
            } => {
                eprintln!(
                    "[sweep]   {scene} ts{tile_size} chunk {}/{chunks} ({frames} frames) in {}",
                    chunk + 1,
                    fmt_secs(duration)
                );
            }
            SweepEvent::RenderLogReplay {
                scene, tile_size, ..
            } => {
                eprintln!("[sweep] replaying cached render log for {scene} ts{tile_size}");
            }
            SweepEvent::RenderLogSaved {
                scene,
                tile_size,
                bytes,
            } => {
                eprintln!("[sweep] cached render log for {scene} ts{tile_size} ({bytes} bytes)");
            }
            // Per-cell timing detail is for the run log, not the terminal.
            SweepEvent::EvalDone { .. } => {}
            SweepEvent::CellDone {
                done,
                total,
                label,
                cells_per_sec,
                elapsed,
                eta,
            } => {
                eprintln!(
                    "[sweep] {done}/{total} {label}  ({cells_per_sec:.2} cells/s, {} elapsed, {})",
                    fmt_secs(elapsed),
                    fmt_eta(eta),
                );
            }
            SweepEvent::Progress {
                done,
                total,
                cells_per_sec,
                eta,
                ..
            } => {
                eprintln!(
                    "[sweep] progress: {done}/{total} cells ({cells_per_sec:.2} cells/s, {})",
                    fmt_eta(eta),
                );
            }
            SweepEvent::StoreResume { resumed, pending } => {
                eprintln!("[sweep] resuming: {resumed} cells already complete, {pending} to run");
            }
        }
    }
}

/// Swallows every event (what `quiet` installs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SweepObserver for NullObserver {
    fn on_event(&self, _event: &SweepEvent<'_>) {}
}

/// Fans every event out to each observer in order — how the CLI runs the
/// stderr lines and the `events.jsonl` stream side by side.
pub struct MultiObserver(Vec<Arc<dyn SweepObserver>>);

impl MultiObserver {
    /// An observer forwarding to every entry of `observers`.
    pub fn new(observers: Vec<Arc<dyn SweepObserver>>) -> Self {
        MultiObserver(observers)
    }
}

impl SweepObserver for MultiObserver {
    fn on_event(&self, event: &SweepEvent<'_>) {
        for o in &self.0 {
            o.on_event(event);
        }
    }
}

/// Runs a [`SweepPlan`]'s jobs against already-captured traces.
///
/// `on_done` is invoked from worker context as each cell completes (the
/// store's commit hook); outcomes come back in cell-id order regardless of
/// scheduling.
pub trait Executor {
    /// Executes every job of `plan` and returns one outcome per eval job,
    /// in cell-id order.
    fn execute(
        &self,
        plan: &SweepPlan,
        traces: &HashMap<&'static str, Arc<Trace>>,
        observer: &dyn SweepObserver,
        on_done: &(dyn Fn(&Cell, &RunReport) + Sync),
    ) -> Vec<CellOutcome>;
}

/// Completion timestamps kept for the windowed ETA.
const ETA_WINDOW: usize = 16;

/// Progress accounting shared by the workers of one execution.
struct Progress<'o> {
    done: AtomicUsize,
    total: usize,
    start: Instant,
    observer: &'o dyn SweepObserver,
    /// Completion instants of the last [`ETA_WINDOW`] cells.
    window: Mutex<std::collections::VecDeque<Instant>>,
}

impl<'o> Progress<'o> {
    fn new(total: usize, observer: &'o dyn SweepObserver) -> Self {
        Progress {
            done: AtomicUsize::new(0),
            total,
            start: Instant::now(),
            observer,
            window: Mutex::new(std::collections::VecDeque::with_capacity(ETA_WINDOW + 1)),
        }
    }

    /// Mean completion rate since the start.
    fn mean_rate(&self, done: usize) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if secs > 0.0 {
            done as f64 / secs
        } else {
            0.0
        }
    }

    /// ETA from the rate over the completions still in the window. `None`
    /// until two completions exist (no rate yet); `Some(0)` when done.
    fn eta(&self, done: usize) -> Option<Duration> {
        let remaining = self.total.saturating_sub(done);
        if remaining == 0 {
            return Some(Duration::ZERO);
        }
        let window = self.window.lock().expect("eta window poisoned");
        let (first, last) = (window.front()?, window.back()?);
        if window.len() < 2 {
            return None;
        }
        let span = last.duration_since(*first).as_secs_f64();
        if span <= 0.0 {
            return None;
        }
        let rate = (window.len() - 1) as f64 / span;
        Some(Duration::from_secs_f64(remaining as f64 / rate))
    }

    fn cell_done(&self, label: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut window = self.window.lock().expect("eta window poisoned");
            window.push_back(Instant::now());
            if window.len() > ETA_WINDOW {
                window.pop_front();
            }
        }
        self.observer.on_event(&SweepEvent::CellDone {
            done,
            total: self.total,
            label,
            cells_per_sec: self.mean_rate(done),
            elapsed: self.start.elapsed(),
            eta: self.eta(done),
        });
    }

    /// Emits one [`SweepEvent::Progress`] heartbeat.
    fn tick(&self) {
        let done = self.done.load(Ordering::Relaxed);
        self.observer.on_event(&SweepEvent::Progress {
            done,
            total: self.total,
            elapsed: self.start.elapsed(),
            cells_per_sec: self.mean_rate(done),
            eta: self.eta(done),
        });
    }
}

/// A render job's shared state: the lazily built log plus the number of
/// cells still due to evaluate it (the log is dropped with the last one).
struct GroupSlot {
    log: Mutex<Option<Arc<RenderLog>>>,
    remaining: AtomicUsize,
    /// Whether the one-per-job replay event was already emitted.
    replay_announced: AtomicBool,
}

/// The std-thread work-stealing executor (the engine's default).
///
/// Eval jobs are seeded round-robin over the work-stealing
/// [`pool`], so different workers tend to reach different render jobs
/// first and Stage A parallelizes across keys; within a job, the first
/// worker renders (holding only that job's lock) and the rest evaluate
/// the shared log, which is freed as its last cell finishes.
///
/// Render jobs a cached `.relog` satisfies ([`RenderJob::cached_log`])
/// never run Stage A at all: each of their cells replays the artifact
/// through [`re_core::relog::RelogReader`], frame by frame, holding at
/// most one frame in memory. With [`log_dir`](Self::log_dir) set, jobs
/// that *do* render persist their log on completion, so the next
/// execution of the same keys is raster-free.
///
/// [`RenderJob::cached_log`]: crate::plan::RenderJob::cached_log
#[derive(Debug, Clone)]
pub struct ThreadExecutor {
    /// Worker threads; 0 means [`pool::default_workers`].
    pub workers: usize,
    /// Render each key once and share the log across its cells (the
    /// default). Disable to rebuild Stage A per cell — only useful for
    /// baselining and equivalence tests (cached logs are ignored too: the
    /// per-cell path measures the full monolithic pipeline).
    pub group_renders: bool,
    /// Directory to persist freshly rendered `.relog` artifacts into
    /// (`None` = don't write). Writes are best-effort: a full disk costs
    /// the cache entry, never the sweep.
    pub log_dir: Option<std::path::PathBuf>,
    /// Threads one Stage A render may spread its frames over
    /// ([`render_key_log_parallel`] — output stays bit-identical at any
    /// setting). 0 means match the executor's worker count, 1 forces
    /// serial Stage A. The budget is divided by the number of renders in
    /// flight, so concurrent keys split the machine instead of
    /// oversubscribing it.
    pub render_workers: usize,
    /// Persist `.relog` artifacts LZSS-compressed (`RELOG002`) instead of
    /// stored (`RELOG001`). Replay reads both framings transparently.
    pub relog_compress: bool,
    /// Interval of the [`SweepEvent::Progress`] heartbeat (`None` =
    /// disabled). A watchdog thread emits the event even while every
    /// worker is busy, plus one final tick as the execution ends.
    pub heartbeat: Option<Duration>,
}

impl Default for ThreadExecutor {
    fn default() -> Self {
        ThreadExecutor {
            workers: 0,
            group_renders: true,
            log_dir: None,
            render_workers: 0,
            relog_compress: false,
            heartbeat: Some(Duration::from_secs(10)),
        }
    }
}

impl ThreadExecutor {
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            pool::default_workers()
        } else {
            self.workers
        }
    }

    /// Runs `body` with the heartbeat watchdog alive (see
    /// [`run_with_heartbeat`]).
    fn with_heartbeat<R>(&self, progress: &Progress<'_>, body: impl FnOnce() -> R) -> R {
        run_with_heartbeat(self.heartbeat, progress, body)
    }
}

/// Runs `body` with the heartbeat watchdog alive (when enabled and there
/// is work): ticks every `interval`, plus a final tick after `body`
/// returns so every execution's event stream ends with a `done == total`
/// progress record. Shared by every executor implementation.
fn run_with_heartbeat<R>(
    heartbeat: Option<Duration>,
    progress: &Progress<'_>,
    body: impl FnOnce() -> R,
) -> R {
    let Some(interval) = heartbeat else {
        return body();
    };
    if progress.total == 0 {
        return body();
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let ticker = s.spawn(|| {
            // Poll well under the interval so shutdown is prompt.
            let poll = interval
                .max(Duration::from_millis(1))
                .min(Duration::from_millis(25));
            let mut since = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(poll);
                if since.elapsed() >= interval {
                    progress.tick();
                    since = Instant::now();
                }
            }
            progress.tick();
        });
        let out = body();
        stop.store(true, Ordering::Relaxed);
        let _ = ticker.join();
        out
    })
}

impl Executor for ThreadExecutor {
    fn execute(
        &self,
        plan: &SweepPlan,
        traces: &HashMap<&'static str, Arc<Trace>>,
        observer: &dyn SweepObserver,
        on_done: &(dyn Fn(&Cell, &RunReport) + Sync),
    ) -> Vec<CellOutcome> {
        let jobs = plan.eval_jobs().to_vec();
        let workers = self.effective_workers().clamp(1, jobs.len().max(1));
        let progress = Progress::new(jobs.len(), observer);

        // Stage histograms and cache counters, resolved once per
        // execution so workers never touch the registry lock.
        let eval_hist = re_obs::metrics::histogram(names::STAGE_EVAL);
        let store_hist = re_obs::metrics::histogram(names::STAGE_STORE);

        if !self.group_renders {
            return self.with_heartbeat(&progress, || {
                pool::run_indexed(jobs, workers, |worker, _i, job| {
                    let trace = &traces[job.cell.scene()];
                    // The monolithic path has no render/evaluate split to
                    // time separately; the whole pipeline lands in the
                    // eval stage.
                    let sw = Stopwatch::start();
                    let report = run_cell(trace, &job.cell);
                    let eval = sw.elapsed();
                    eval_hist.record(eval);
                    let sw = Stopwatch::start();
                    on_done(&job.cell, &report);
                    let store = sw.elapsed();
                    store_hist.record(store);
                    observer.on_event(&SweepEvent::EvalDone {
                        cell: job.cell.id,
                        scene: job.cell.scene(),
                        worker,
                        replayed: false,
                        eval,
                        store,
                    });
                    progress.cell_done(&job.cell.label());
                    CellOutcome {
                        cell: job.cell,
                        report,
                    }
                })
            });
        }

        // One slot per render job, indexed by the job's plan position.
        let slots: Vec<GroupSlot> = plan
            .render_jobs()
            .iter()
            .map(|rj| GroupSlot {
                log: Mutex::new(None),
                remaining: AtomicUsize::new(rj.cells.len()),
                replay_announced: AtomicBool::new(false),
            })
            .collect();
        observer.on_event(&SweepEvent::GroupStart {
            cells: jobs.len(),
            render_jobs: slots.len(),
            workers,
            shard: plan.shard_spec(),
        });
        let log_cache = crate::artifacts::RenderLogCache::new(self.log_dir.clone())
            .with_compression(if self.relog_compress {
                re_core::relog::Compression::Lzss
            } else {
                re_core::relog::Compression::None
            });
        let render_hist = re_obs::metrics::histogram(names::STAGE_RENDER);
        let replay_hist = re_obs::metrics::histogram(names::STAGE_REPLAY);
        let relog_replays = re_obs::metrics::counter(names::RELOG_REPLAYS);
        let relog_saves = re_obs::metrics::counter(names::RELOG_SAVES);
        let bytes_read = re_obs::metrics::counter(names::ARTIFACT_BYTES_READ);
        let bytes_written = re_obs::metrics::counter(names::ARTIFACT_BYTES_WRITTEN);
        let frame_chunks = re_obs::metrics::counter(names::RENDER_FRAME_CHUNKS);
        let stitch_hist = re_obs::metrics::histogram(names::RENDER_STITCH_NS);
        let compressed_bytes = re_obs::metrics::counter(names::RELOG_COMPRESSED_BYTES);
        // Stage A parallelism budget, divided among renders in flight: a
        // single hot key fans its frames over every render worker, while
        // many concurrent keys parallelize across keys first. Any split is
        // exact (stitching is chunking-invariant), so the adaptive budget
        // never perturbs results.
        let render_budget = if self.render_workers == 0 {
            workers
        } else {
            self.render_workers
        };
        let active_renders = AtomicUsize::new(0);

        self.with_heartbeat(&progress, || {
            pool::run_indexed(jobs, workers, |worker, _i, job| {
                let render_job = &plan.render_jobs()[job.render_job];
                let key = &render_job.key;
                let slot = &slots[job.render_job];
                let opts = job.cell.point.sim_options();

                // Satisfied job: stream the cached artifact instead of
                // rendering — frame by frame, so memory stays bounded to one
                // frame per worker no matter how many cells share the key.
                if let Some(path) = &render_job.cached_log {
                    if !slot.replay_announced.swap(true, Ordering::Relaxed) {
                        observer.on_event(&SweepEvent::RenderLogReplay {
                            scene: key.scene(),
                            tile_size: key.tile_size(),
                            worker,
                        });
                    }
                    let sw = Stopwatch::start();
                    let streamed = re_core::relog::RelogReader::open(path)
                        .and_then(|mut r| re_core::relog::evaluate_reader(&mut r, &opts));
                    if let Ok(report) = streamed {
                        let eval = sw.elapsed();
                        replay_hist.record(eval);
                        relog_replays.incr();
                        bytes_read.add(std::fs::metadata(path).map_or(0, |m| m.len()));
                        let sw = Stopwatch::start();
                        on_done(&job.cell, &report);
                        let store = sw.elapsed();
                        store_hist.record(store);
                        observer.on_event(&SweepEvent::EvalDone {
                            cell: job.cell.id,
                            scene: key.scene(),
                            worker,
                            replayed: true,
                            eval,
                            store,
                        });
                        progress.cell_done(&job.cell.label());
                        return CellOutcome {
                            cell: job.cell,
                            report,
                        };
                    }
                    // The artifact was validated when the plan was annotated,
                    // so a failure here means it changed underneath us —
                    // fall through and render the key like any other job.
                }

                let log = {
                    let mut guard = slot.log.lock().expect("group slot poisoned");
                    match guard.as_ref() {
                        Some(log) => Arc::clone(log),
                        None => {
                            observer.on_event(&SweepEvent::RenderStart {
                                scene: key.scene(),
                                tile_size: key.tile_size(),
                                worker,
                            });
                            let trace = match traces.get(key.scene()) {
                                Some(t) => Arc::clone(t),
                                // Traces are only captured for unsatisfied
                                // jobs; if a satisfied job's artifact just
                                // vanished, capture its trace on the fly.
                                None => Arc::new(
                                    crate::artifacts::capture_alias(
                                        key.scene(),
                                        key.frames(),
                                        re_gpu::GpuConfig {
                                            width: key.gpu_config().width,
                                            height: key.gpu_config().height,
                                            ..re_gpu::GpuConfig::default()
                                        },
                                    )
                                    .expect("workload aliases in a plan are known"),
                                ),
                            };
                            let in_flight = active_renders.fetch_add(1, Ordering::AcqRel) + 1;
                            let budget = (render_budget / in_flight).max(1);
                            let sw = Stopwatch::start();
                            let rendered = render_key_log_parallel(&trace, key, budget);
                            active_renders.fetch_sub(1, Ordering::AcqRel);
                            let duration = sw.elapsed();
                            render_hist.record(duration);
                            frame_chunks.add(rendered.chunks.len() as u64);
                            stitch_hist.record(rendered.stitch);
                            if rendered.chunks.len() > 1 {
                                for t in &rendered.chunks {
                                    observer.on_event(&SweepEvent::RenderChunkDone {
                                        scene: key.scene(),
                                        tile_size: key.tile_size(),
                                        worker,
                                        chunk: t.chunk,
                                        chunks: rendered.chunks.len(),
                                        frames: t.frames,
                                        duration: t.duration,
                                    });
                                }
                            }
                            let log = Arc::new(rendered.log);
                            observer.on_event(&SweepEvent::RenderDone {
                                scene: key.scene(),
                                tile_size: key.tile_size(),
                                worker,
                                frames: key.frames(),
                                duration,
                            });
                            // Persist for future runs (best-effort: the cache
                            // is an optimization, never a failure source).
                            if render_job.cached_log.is_none() {
                                if let Ok(Some(path)) = log_cache.store(key, &log) {
                                    let bytes = std::fs::metadata(&path).map_or(0, |m| m.len());
                                    relog_saves.incr();
                                    bytes_written.add(bytes);
                                    if self.relog_compress {
                                        compressed_bytes.add(bytes);
                                    }
                                    observer.on_event(&SweepEvent::RenderLogSaved {
                                        scene: key.scene(),
                                        tile_size: key.tile_size(),
                                        bytes,
                                    });
                                }
                            }
                            *guard = Some(Arc::clone(&log));
                            log
                        }
                    }
                };
                let sw = Stopwatch::start();
                let report = re_core::evaluate(&log, &opts);
                let eval = sw.elapsed();
                eval_hist.record(eval);
                drop(log);
                // Last cell of the job: free the log's memory early instead of
                // keeping every job's log alive until the sweep ends.
                if slot.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    *slot.log.lock().expect("group slot poisoned") = None;
                }
                let sw = Stopwatch::start();
                on_done(&job.cell, &report);
                let store = sw.elapsed();
                store_hist.record(store);
                observer.on_event(&SweepEvent::EvalDone {
                    cell: job.cell.id,
                    scene: key.scene(),
                    worker,
                    replayed: false,
                    eval,
                    store,
                });
                progress.cell_done(&job.cell.label());
                CellOutcome {
                    cell: job.cell,
                    report,
                }
            })
        })
    }
}

/// Cross-execution render deduplication: a process-wide registry of render
/// keys whose Stage A is currently running in *some* execution, so
/// concurrent plans sharing a key rasterize it once between them.
///
/// The `sweep serve` daemon keeps one registry per process and hands it to
/// every [`AsyncExecutor`]: the first execution to reach a key becomes the
/// **leader** (renders, persists the `.relog` artifact, publishes its
/// path); executions reaching the key while that render runs become
/// **followers** and block until the artifact is published, then load it
/// instead of rendering. Keys are registered under their cache file name
/// ([`crate::artifacts::RenderLogCache::file_key`]), which encodes the full
/// render identity (scene, frames, screen, tile size, binning).
///
/// A finished key is removed from the registry — later executions find the
/// persisted artifact through the regular cache lookup instead.
#[derive(Debug, Default)]
pub struct InFlightRenders {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug)]
enum FlightState {
    Rendering,
    Done(Option<PathBuf>),
}

/// The outcome of [`InFlightRenders::begin`].
pub enum FlightClaim {
    /// No other execution is rendering the key: this caller renders it and
    /// must publish the outcome through [`FlightLease::finish`]. Dropping
    /// the lease unfinished publishes `None`, so followers never hang on a
    /// leader that failed or panicked.
    Leader(FlightLease),
    /// Another execution is already rendering the key;
    /// [`FlightWait::wait`] blocks until it publishes.
    Follower(FlightWait),
}

/// The leader's obligation to publish a render's outcome (see
/// [`FlightClaim::Leader`]).
pub struct FlightLease {
    registry: Arc<InFlightRenders>,
    key: String,
    flight: Arc<Flight>,
    finished: bool,
}

/// A follower's handle on a render another execution is running (see
/// [`FlightClaim::Follower`]).
pub struct FlightWait {
    flight: Arc<Flight>,
}

impl InFlightRenders {
    /// A fresh shared registry.
    pub fn new() -> Arc<Self> {
        Arc::new(InFlightRenders::default())
    }

    /// Claims `key`: [`FlightClaim::Leader`] when nobody is rendering it
    /// (the caller now owns the render), [`FlightClaim::Follower`] when a
    /// render is already in flight.
    pub fn begin(self: &Arc<Self>, key: &str) -> FlightClaim {
        let mut flights = self.flights.lock().expect("flights poisoned");
        if let Some(f) = flights.get(key) {
            return FlightClaim::Follower(FlightWait {
                flight: Arc::clone(f),
            });
        }
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState::Rendering),
            done: Condvar::new(),
        });
        flights.insert(key.to_string(), Arc::clone(&flight));
        FlightClaim::Leader(FlightLease {
            registry: Arc::clone(self),
            key: key.to_string(),
            flight,
            finished: false,
        })
    }

    /// Render keys currently in flight (for status displays).
    pub fn len(&self) -> usize {
        self.flights.lock().expect("flights poisoned").len()
    }

    /// Whether no render is currently in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FlightLease {
    /// Publishes the render's outcome to every follower: the path of the
    /// persisted `.relog` artifact, or `None` when the render could not be
    /// persisted (followers then render the key themselves).
    pub fn finish(mut self, artifact: Option<PathBuf>) {
        self.publish(artifact);
    }

    fn publish(&mut self, artifact: Option<PathBuf>) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.registry
            .flights
            .lock()
            .expect("flights poisoned")
            .remove(&self.key);
        *self.flight.state.lock().expect("flight poisoned") = FlightState::Done(artifact);
        self.flight.done.notify_all();
    }
}

impl Drop for FlightLease {
    fn drop(&mut self) {
        self.publish(None);
    }
}

impl FlightWait {
    /// Blocks until the leader publishes, then returns the artifact path
    /// (`None` when the leader could not persist one — the caller renders
    /// the key itself).
    pub fn wait(&self) -> Option<PathBuf> {
        let mut state = self.flight.state.lock().expect("flight poisoned");
        loop {
            match &*state {
                FlightState::Done(p) => return p.clone(),
                FlightState::Rendering => {
                    state = self.flight.done.wait(state).expect("flight poisoned")
                }
            }
        }
    }
}

/// One render job's prefetched artifact bytes.
struct PrefetchSlot {
    bytes: Mutex<Option<Arc<Vec<u8>>>>,
    ready: Condvar,
    failed: AtomicBool,
}

/// Book-keeping of the replay-prefetch thread.
struct IoState {
    /// Per render job: whether its artifact read has started.
    read: Vec<bool>,
    /// Jobs a worker is blocked on (served before speculation and outside
    /// the window, so a waiting worker can never deadlock against it).
    demanded: VecDeque<usize>,
    /// Next index into the satisfied-job list to speculate on.
    next: usize,
    /// Artifacts read but not yet fully consumed (bounds memory).
    outstanding: usize,
}

/// The [`AsyncExecutor`]'s replay pipeline: a dedicated I/O thread reads
/// `.relog` artifacts ahead of the workers, which decode and evaluate from
/// memory — replay disk reads overlap evaluation instead of serializing
/// with it inside each worker.
struct Prefetcher {
    slots: Vec<PrefetchSlot>,
    state: Mutex<IoState>,
    io_wake: Condvar,
    window: usize,
}

impl Prefetcher {
    fn new(render_jobs: usize, window: usize) -> Self {
        Prefetcher {
            slots: (0..render_jobs)
                .map(|_| PrefetchSlot {
                    bytes: Mutex::new(None),
                    ready: Condvar::new(),
                    failed: AtomicBool::new(false),
                })
                .collect(),
            state: Mutex::new(IoState {
                read: vec![false; render_jobs],
                demanded: VecDeque::new(),
                next: 0,
                outstanding: 0,
            }),
            io_wake: Condvar::new(),
            window: window.max(1),
        }
    }

    /// The I/O thread body: reads every satisfied job's artifact, demanded
    /// jobs first, then speculatively in plan order while fewer than
    /// `window` read artifacts await consumption.
    fn run_io(&self, plan: &SweepPlan, satisfied: &[usize]) {
        let mut reads = 0;
        while reads < satisfied.len() {
            let job = {
                let mut st = self.state.lock().expect("prefetch state poisoned");
                loop {
                    let demanded = loop {
                        match st.demanded.pop_front() {
                            Some(j) if !st.read[j] => break Some(j),
                            Some(_) => continue,
                            None => break None,
                        }
                    };
                    if let Some(j) = demanded {
                        break j;
                    }
                    while st.next < satisfied.len() && st.read[satisfied[st.next]] {
                        st.next += 1;
                    }
                    if st.next < satisfied.len() && st.outstanding < self.window {
                        let j = satisfied[st.next];
                        st.next += 1;
                        break j;
                    }
                    st = self.io_wake.wait(st).expect("prefetch state poisoned");
                }
            };
            {
                let mut st = self.state.lock().expect("prefetch state poisoned");
                st.read[job] = true;
                st.outstanding += 1;
            }
            let path = plan.render_jobs()[job]
                .cached_log
                .as_ref()
                .expect("satisfied jobs carry a cached log");
            match std::fs::read(path) {
                Ok(b) => {
                    let slot = &self.slots[job];
                    *slot.bytes.lock().expect("prefetch slot poisoned") = Some(Arc::new(b));
                    slot.ready.notify_all();
                }
                Err(_) => {
                    // The artifact vanished or the read failed: publish the
                    // failure so waiting cells fall back to rendering.
                    let slot = &self.slots[job];
                    slot.failed.store(true, Ordering::Release);
                    slot.ready.notify_all();
                }
            }
            reads += 1;
        }
    }

    /// A cell's view of its job's artifact bytes: demands the read if it
    /// has not started, blocks until the bytes (shared by every cell of
    /// the job) are ready, and returns `None` when the read failed.
    fn take(&self, job: usize) -> Option<Arc<Vec<u8>>> {
        let slot = &self.slots[job];
        let mut bytes = slot.bytes.lock().expect("prefetch slot poisoned");
        if bytes.is_none() && !slot.failed.load(Ordering::Acquire) {
            {
                let mut st = self.state.lock().expect("prefetch state poisoned");
                if !st.read[job] {
                    st.demanded.push_back(job);
                    self.io_wake.notify_one();
                }
            }
            while bytes.is_none() && !slot.failed.load(Ordering::Acquire) {
                bytes = slot.ready.wait(bytes).expect("prefetch slot poisoned");
            }
        }
        bytes.clone()
    }

    /// Releases a fully evaluated job's bytes and lets speculation advance.
    fn consume(&self, job: usize) {
        *self.slots[job]
            .bytes
            .lock()
            .expect("prefetch slot poisoned") = None;
        let mut st = self.state.lock().expect("prefetch state poisoned");
        st.outstanding = st.outstanding.saturating_sub(1);
        self.io_wake.notify_one();
    }
}

/// The overlapped-pipeline executor behind `sweep serve` — the planned
/// second [`Executor`] implementation on the plan/executor seam.
///
/// Two things distinguish it from [`ThreadExecutor`]:
///
/// * **Overlapped replay I/O.** Render jobs satisfied by a cached `.relog`
///   are read by a dedicated prefetch thread (`Prefetcher`) — demanded
///   reads first, then speculative read-ahead bounded by
///   [`prefetch`](Self::prefetch) — while workers decode and evaluate the
///   bytes from memory. Workers never block on disk unless the artifact
///   genuinely is not read yet.
/// * **Cross-execution render dedup.** With a shared
///   [`InFlightRenders`] registry ([`in_flight`](Self::in_flight)),
///   concurrent executions (the daemon's queued submissions) rasterize
///   each render key once between them: the leader renders and persists,
///   followers wait and load the artifact. A late cache lookup also
///   catches artifacts persisted after this plan was compiled.
///
/// Renders are always grouped (one Stage A per render key shared by its
/// cells); outcomes keep the executor contract — cell-id order,
/// bit-identical to [`ThreadExecutor`]'s at any worker count.
#[derive(Debug, Clone)]
pub struct AsyncExecutor {
    /// Worker threads; 0 means [`pool::default_workers`].
    pub workers: usize,
    /// Directory of the `.relog` artifact cache — both where freshly
    /// rendered logs are persisted and where the late lookup and in-flight
    /// followers load from (`None` disables persistence and makes every
    /// follower re-render).
    pub log_dir: Option<PathBuf>,
    /// Stage A frame-parallel budget (same semantics as
    /// [`ThreadExecutor::render_workers`]).
    pub render_workers: usize,
    /// Persist `.relog` artifacts LZSS-compressed.
    pub relog_compress: bool,
    /// Interval of the [`SweepEvent::Progress`] heartbeat (`None` =
    /// disabled).
    pub heartbeat: Option<Duration>,
    /// Replay artifacts the prefetch thread may hold in memory awaiting
    /// consumption (speculative read-ahead window; demanded reads bypass
    /// it). Clamped to at least 1.
    pub prefetch: usize,
    /// Shared cross-execution render registry (`None` = dedup only against
    /// the disk cache).
    pub in_flight: Option<Arc<InFlightRenders>>,
}

impl Default for AsyncExecutor {
    fn default() -> Self {
        AsyncExecutor {
            workers: 0,
            log_dir: None,
            render_workers: 0,
            relog_compress: false,
            heartbeat: Some(Duration::from_secs(10)),
            prefetch: 3,
            in_flight: None,
        }
    }
}

impl Executor for AsyncExecutor {
    fn execute(
        &self,
        plan: &SweepPlan,
        traces: &HashMap<&'static str, Arc<Trace>>,
        observer: &dyn SweepObserver,
        on_done: &(dyn Fn(&Cell, &RunReport) + Sync),
    ) -> Vec<CellOutcome> {
        let jobs = plan.eval_jobs().to_vec();
        let workers = if self.workers == 0 {
            pool::default_workers()
        } else {
            self.workers
        }
        .clamp(1, jobs.len().max(1));
        let progress = Progress::new(jobs.len(), observer);

        let slots: Vec<GroupSlot> = plan
            .render_jobs()
            .iter()
            .map(|rj| GroupSlot {
                log: Mutex::new(None),
                remaining: AtomicUsize::new(rj.cells.len()),
                replay_announced: AtomicBool::new(false),
            })
            .collect();
        observer.on_event(&SweepEvent::GroupStart {
            cells: jobs.len(),
            render_jobs: slots.len(),
            workers,
            shard: plan.shard_spec(),
        });
        let log_cache = crate::artifacts::RenderLogCache::new(self.log_dir.clone())
            .with_compression(if self.relog_compress {
                re_core::relog::Compression::Lzss
            } else {
                re_core::relog::Compression::None
            });
        let eval_hist = re_obs::metrics::histogram(names::STAGE_EVAL);
        let store_hist = re_obs::metrics::histogram(names::STAGE_STORE);
        let render_hist = re_obs::metrics::histogram(names::STAGE_RENDER);
        let replay_hist = re_obs::metrics::histogram(names::STAGE_REPLAY);
        let relog_replays = re_obs::metrics::counter(names::RELOG_REPLAYS);
        let relog_saves = re_obs::metrics::counter(names::RELOG_SAVES);
        let bytes_read = re_obs::metrics::counter(names::ARTIFACT_BYTES_READ);
        let bytes_written = re_obs::metrics::counter(names::ARTIFACT_BYTES_WRITTEN);
        let frame_chunks = re_obs::metrics::counter(names::RENDER_FRAME_CHUNKS);
        let stitch_hist = re_obs::metrics::histogram(names::RENDER_STITCH_NS);
        let compressed_bytes = re_obs::metrics::counter(names::RELOG_COMPRESSED_BYTES);
        let inflight_hits = re_obs::metrics::counter(names::SERVE_DEDUP_INFLIGHT);
        let render_budget = if self.render_workers == 0 {
            workers
        } else {
            self.render_workers
        };
        let active_renders = AtomicUsize::new(0);

        // Stage A for one key, persisting the artifact when a cache
        // directory is configured. Shared by the leader, follower-fallback
        // and cache-less paths.
        let render_and_store = |key: &crate::grid::RenderKey, worker: usize, persist: bool| {
            observer.on_event(&SweepEvent::RenderStart {
                scene: key.scene(),
                tile_size: key.tile_size(),
                worker,
            });
            let trace = match traces.get(key.scene()) {
                Some(t) => Arc::clone(t),
                // Satisfied jobs are excluded from capture; if their
                // artifact vanished, capture the trace on the fly.
                None => Arc::new(
                    crate::artifacts::capture_alias(
                        key.scene(),
                        key.frames(),
                        re_gpu::GpuConfig {
                            width: key.gpu_config().width,
                            height: key.gpu_config().height,
                            ..re_gpu::GpuConfig::default()
                        },
                    )
                    .expect("workload aliases in a plan are known"),
                ),
            };
            let in_flight_now = active_renders.fetch_add(1, Ordering::AcqRel) + 1;
            let budget = (render_budget / in_flight_now).max(1);
            let sw = Stopwatch::start();
            let rendered = render_key_log_parallel(&trace, key, budget);
            active_renders.fetch_sub(1, Ordering::AcqRel);
            let duration = sw.elapsed();
            render_hist.record(duration);
            frame_chunks.add(rendered.chunks.len() as u64);
            stitch_hist.record(rendered.stitch);
            if rendered.chunks.len() > 1 {
                for t in &rendered.chunks {
                    observer.on_event(&SweepEvent::RenderChunkDone {
                        scene: key.scene(),
                        tile_size: key.tile_size(),
                        worker,
                        chunk: t.chunk,
                        chunks: rendered.chunks.len(),
                        frames: t.frames,
                        duration: t.duration,
                    });
                }
            }
            let log = Arc::new(rendered.log);
            observer.on_event(&SweepEvent::RenderDone {
                scene: key.scene(),
                tile_size: key.tile_size(),
                worker,
                frames: key.frames(),
                duration,
            });
            let mut stored = None;
            if persist {
                if let Ok(Some(path)) = log_cache.store(key, &log) {
                    let bytes = std::fs::metadata(&path).map_or(0, |m| m.len());
                    relog_saves.incr();
                    bytes_written.add(bytes);
                    if self.relog_compress {
                        compressed_bytes.add(bytes);
                    }
                    observer.on_event(&SweepEvent::RenderLogSaved {
                        scene: key.scene(),
                        tile_size: key.tile_size(),
                        bytes,
                    });
                    stored = Some(path);
                }
            }
            (log, stored)
        };

        // Loads a persisted artifact into a shared in-memory log (the
        // follower / late-lookup path). Invalid artifacts return `None`.
        let load_artifact = |path: &std::path::Path| -> Option<Arc<RenderLog>> {
            let log = re_core::relog::load(path).ok()?;
            bytes_read.add(std::fs::metadata(path).map_or(0, |m| m.len()));
            Some(Arc::new(log))
        };

        let satisfied: Vec<usize> = plan
            .render_jobs()
            .iter()
            .enumerate()
            .filter(|(_, rj)| rj.cached_log.is_some())
            .map(|(i, _)| i)
            .collect();
        let pre = Prefetcher::new(plan.render_jobs().len(), self.prefetch);

        run_with_heartbeat(self.heartbeat, &progress, || {
            std::thread::scope(|scope| {
                scope.spawn(|| pre.run_io(plan, &satisfied));
                pool::run_indexed(jobs, workers, |worker, _i, job| {
                    let render_job = &plan.render_jobs()[job.render_job];
                    let key = &render_job.key;
                    let slot = &slots[job.render_job];
                    let opts = job.cell.point.sim_options();

                    // The last cell of a job frees its shared state (the
                    // in-memory log and the prefetched bytes) early.
                    let finish_job = || {
                        if slot.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            *slot.log.lock().expect("group slot poisoned") = None;
                            if render_job.cached_log.is_some() {
                                pre.consume(job.render_job);
                            }
                        }
                    };

                    // Satisfied job: evaluate the prefetched bytes (the
                    // disk read already happened on the I/O thread).
                    if render_job.cached_log.is_some() {
                        if let Some(bytes) = pre.take(job.render_job) {
                            if !slot.replay_announced.swap(true, Ordering::Relaxed) {
                                observer.on_event(&SweepEvent::RenderLogReplay {
                                    scene: key.scene(),
                                    tile_size: key.tile_size(),
                                    worker,
                                });
                            }
                            let sw = Stopwatch::start();
                            let streamed =
                                re_core::relog::RelogReader::new(std::io::Cursor::new(&bytes[..]))
                                    .and_then(|mut r| {
                                        re_core::relog::evaluate_reader(&mut r, &opts)
                                    });
                            if let Ok(report) = streamed {
                                let eval = sw.elapsed();
                                replay_hist.record(eval);
                                relog_replays.incr();
                                bytes_read.add(bytes.len() as u64);
                                let sw = Stopwatch::start();
                                on_done(&job.cell, &report);
                                let store = sw.elapsed();
                                store_hist.record(store);
                                observer.on_event(&SweepEvent::EvalDone {
                                    cell: job.cell.id,
                                    scene: key.scene(),
                                    worker,
                                    replayed: true,
                                    eval,
                                    store,
                                });
                                progress.cell_done(&job.cell.label());
                                finish_job();
                                return CellOutcome {
                                    cell: job.cell,
                                    report,
                                };
                            }
                        }
                        // Read or decode failure: the artifact changed
                        // underneath us — render the key like any other job.
                    }

                    let log = {
                        let mut guard = slot.log.lock().expect("group slot poisoned");
                        match guard.as_ref() {
                            Some(log) => Arc::clone(log),
                            None => {
                                // Late cache lookup: another execution may
                                // have persisted this key after this plan
                                // was annotated.
                                let built = if let Some(log) =
                                    log_cache.lookup(key).and_then(|p| load_artifact(&p))
                                {
                                    if !slot.replay_announced.swap(true, Ordering::Relaxed) {
                                        observer.on_event(&SweepEvent::RenderLogReplay {
                                            scene: key.scene(),
                                            tile_size: key.tile_size(),
                                            worker,
                                        });
                                    }
                                    log
                                } else if let Some(flights) = &self.in_flight {
                                    match flights
                                        .begin(&crate::artifacts::RenderLogCache::file_key(key))
                                    {
                                        FlightClaim::Leader(lease) => {
                                            let (log, stored) = render_and_store(key, worker, true);
                                            lease.finish(stored);
                                            log
                                        }
                                        FlightClaim::Follower(waiter) => {
                                            match waiter.wait().and_then(|p| load_artifact(&p)) {
                                                Some(log) => {
                                                    inflight_hits.incr();
                                                    if !slot
                                                        .replay_announced
                                                        .swap(true, Ordering::Relaxed)
                                                    {
                                                        observer.on_event(
                                                            &SweepEvent::RenderLogReplay {
                                                                scene: key.scene(),
                                                                tile_size: key.tile_size(),
                                                                worker,
                                                            },
                                                        );
                                                    }
                                                    log
                                                }
                                                // The leader could not
                                                // persist: render locally.
                                                None => render_and_store(key, worker, true).0,
                                            }
                                        }
                                    }
                                } else {
                                    render_and_store(key, worker, true).0
                                };
                                *guard = Some(Arc::clone(&built));
                                built
                            }
                        }
                    };
                    let sw = Stopwatch::start();
                    let report = re_core::evaluate(&log, &opts);
                    let eval = sw.elapsed();
                    eval_hist.record(eval);
                    drop(log);
                    let sw = Stopwatch::start();
                    on_done(&job.cell, &report);
                    let store = sw.elapsed();
                    store_hist.record(store);
                    observer.on_event(&SweepEvent::EvalDone {
                        cell: job.cell.id,
                        scene: key.scene(),
                        worker,
                        replayed: false,
                        eval,
                        store,
                    });
                    progress.cell_done(&job.cell.label());
                    finish_job();
                    CellOutcome {
                        cell: job.cell,
                        report,
                    }
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis;
    use crate::engine::capture_traces;
    use crate::grid::ExperimentGrid;
    use crate::SweepOptions;

    fn tiny_grid() -> ExperimentGrid {
        let mut g = ExperimentGrid::default()
            .with_scenes(&["ccs"])
            .with_axis(axis::SIG_BITS, vec![16, 32]);
        g.frames = 2;
        g.width = 128;
        g.height = 64;
        g
    }

    /// Collects events (thread-safely) for assertions.
    #[derive(Default)]
    struct Recorder(Mutex<Vec<String>>);

    impl SweepObserver for Recorder {
        fn on_event(&self, event: &SweepEvent<'_>) {
            let tag = match event {
                SweepEvent::CaptureStart { scene, .. } => format!("capture:{scene}"),
                SweepEvent::CaptureDone { scene, .. } => format!("captured:{scene}"),
                SweepEvent::GroupStart {
                    cells,
                    render_jobs,
                    workers,
                    shard,
                } => {
                    format!(
                        "group:{cells}/{render_jobs}:w{workers}{}",
                        match shard {
                            Some(s) => format!(":{s}"),
                            None => String::new(),
                        }
                    )
                }
                SweepEvent::RenderStart { scene, .. } => format!("render:{scene}"),
                SweepEvent::RenderDone { scene, .. } => format!("rendered:{scene}"),
                SweepEvent::RenderChunkDone {
                    scene,
                    chunk,
                    chunks,
                    ..
                } => format!("chunk:{scene}:{chunk}/{chunks}"),
                SweepEvent::RenderLogReplay { scene, .. } => format!("replay:{scene}"),
                SweepEvent::RenderLogSaved { scene, .. } => format!("logsaved:{scene}"),
                SweepEvent::EvalDone { cell, replayed, .. } => {
                    format!("eval:{cell}:{replayed}")
                }
                SweepEvent::CellDone { done, total, .. } => format!("done:{done}/{total}"),
                SweepEvent::Progress { done, total, .. } => format!("progress:{done}/{total}"),
                SweepEvent::StoreResume { resumed, pending } => {
                    format!("resume:{resumed}+{pending}")
                }
            };
            self.0.lock().unwrap().push(tag);
        }
    }

    #[test]
    fn thread_executor_runs_a_plan_and_reports_events() {
        let grid = tiny_grid();
        let plan = SweepPlan::compile(&grid);
        let opts = SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        };
        let traces = capture_traces(&grid, &opts).expect("capture");
        let recorder = Recorder::default();
        let count = AtomicUsize::new(0);
        let exec = ThreadExecutor {
            workers: 2,
            ..ThreadExecutor::default()
        };
        let outcomes = exec.execute(&plan, &traces, &recorder, &|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outcomes.len(), 2);
        assert_eq!(count.load(Ordering::Relaxed), 2);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.cell.id, i);
        }
        let events = recorder.0.into_inner().unwrap();
        assert!(events.contains(&"group:2/1:w2".to_string()), "{events:?}");
        // One render (one key), two cell completions, two eval records.
        assert_eq!(events.iter().filter(|e| *e == "render:ccs").count(), 1);
        assert_eq!(events.iter().filter(|e| *e == "rendered:ccs").count(), 1);
        assert!(events.contains(&"done:2/2".to_string()), "{events:?}");
        assert!(events.contains(&"eval:0:false".to_string()), "{events:?}");
        assert!(events.contains(&"eval:1:false".to_string()), "{events:?}");
        // The final heartbeat tick always fires, with everything done.
        assert!(events.contains(&"progress:2/2".to_string()), "{events:?}");
    }

    #[test]
    fn heartbeat_interval_ticks_during_execution() {
        let grid = tiny_grid();
        let plan = SweepPlan::compile(&grid);
        let opts = SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        };
        let traces = capture_traces(&grid, &opts).expect("capture");
        let recorder = Recorder::default();
        let exec = ThreadExecutor {
            workers: 1,
            heartbeat: Some(Duration::from_millis(1)),
            ..ThreadExecutor::default()
        };
        exec.execute(&plan, &traces, &recorder, &|_, _| {});
        let events = recorder.0.into_inner().unwrap();
        let ticks = events.iter().filter(|e| e.starts_with("progress:")).count();
        assert!(ticks >= 1, "{events:?}");
    }

    #[test]
    fn disabled_heartbeat_emits_no_progress() {
        let grid = tiny_grid();
        let plan = SweepPlan::compile(&grid);
        let opts = SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        };
        let traces = capture_traces(&grid, &opts).expect("capture");
        let recorder = Recorder::default();
        let exec = ThreadExecutor {
            workers: 2,
            heartbeat: None,
            ..ThreadExecutor::default()
        };
        exec.execute(&plan, &traces, &recorder, &|_, _| {});
        let events = recorder.0.into_inner().unwrap();
        assert!(
            !events.iter().any(|e| e.starts_with("progress:")),
            "{events:?}"
        );
    }

    #[test]
    fn frame_parallel_stage_a_emits_chunk_events_and_matches_serial() {
        let mut grid = tiny_grid();
        grid.frames = 6;
        let plan = SweepPlan::compile(&grid);
        let opts = SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        };
        let traces = capture_traces(&grid, &opts).expect("capture");
        let run = |render_workers| {
            let recorder = Recorder::default();
            let outcomes = ThreadExecutor {
                workers: 2,
                render_workers,
                ..ThreadExecutor::default()
            }
            .execute(&plan, &traces, &recorder, &|_, _| {});
            (outcomes, recorder.0.into_inner().unwrap())
        };
        let (serial, serial_events) = run(1);
        let (parallel, parallel_events) = run(4);
        // Serial Stage A emits no chunk events; the 4-way render splits its
        // single key's 6 frames into 4 chunks, announced before RenderDone.
        assert!(
            !serial_events.iter().any(|e| e.starts_with("chunk:")),
            "{serial_events:?}"
        );
        for chunk in 0..4 {
            assert!(
                parallel_events.contains(&format!("chunk:ccs:{chunk}/4")),
                "{parallel_events:?}"
            );
        }
        // Outcomes are bit-identical regardless of the render budget.
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.report, b.report, "cell {}", a.cell.id);
        }
    }

    #[test]
    fn grouped_and_per_cell_executors_agree() {
        let grid = tiny_grid();
        let plan = SweepPlan::compile(&grid);
        let opts = SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        };
        let traces = capture_traces(&grid, &opts).expect("capture");
        let run = |group_renders| {
            ThreadExecutor {
                workers: 2,
                group_renders,
                ..ThreadExecutor::default()
            }
            .execute(&plan, &traces, &NullObserver, &|_, _| {})
        };
        let (grouped, per_cell) = (run(true), run(false));
        assert_eq!(grouped.len(), per_cell.len());
        for (a, b) in grouped.iter().zip(&per_cell) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.report, b.report);
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("re_exec_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn async_executor_matches_thread_executor_cold_and_warm() {
        let grid = tiny_grid();
        let plan = SweepPlan::compile(&grid);
        let opts = SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        };
        let traces = capture_traces(&grid, &opts).expect("capture");
        let reference = ThreadExecutor {
            workers: 2,
            ..ThreadExecutor::default()
        }
        .execute(&plan, &traces, &NullObserver, &|_, _| {});

        // Cold: no artifacts yet, the async executor renders and persists.
        let dir = tmp_dir("async_cold");
        let exec = AsyncExecutor {
            workers: 2,
            log_dir: Some(dir.clone()),
            heartbeat: None,
            ..AsyncExecutor::default()
        };
        let recorder = Recorder::default();
        let cold = exec.execute(&plan, &traces, &recorder, &|_, _| {});
        assert_eq!(cold.len(), reference.len());
        for (a, b) in cold.iter().zip(&reference) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.report, b.report, "cold cell {}", a.cell.id);
        }
        let events = recorder.0.into_inner().unwrap();
        assert_eq!(events.iter().filter(|e| *e == "render:ccs").count(), 1);

        // Warm: annotate the plan against the now-populated cache — every
        // cell replays through the prefetch pipeline, nothing renders.
        let mut warm_plan = plan.clone();
        warm_plan.attach_cached_logs(&crate::artifacts::RenderLogCache::new(Some(dir.clone())));
        let recorder = Recorder::default();
        let warm = exec.execute(&warm_plan, &traces, &recorder, &|_, _| {});
        assert_eq!(warm.len(), reference.len());
        for (a, b) in warm.iter().zip(&reference) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.report, b.report, "warm cell {}", a.cell.id);
        }
        let events = recorder.0.into_inner().unwrap();
        assert!(
            !events.iter().any(|e| e.starts_with("render:")),
            "warm run must not render: {events:?}"
        );
        assert!(events.contains(&"eval:0:true".to_string()), "{events:?}");
        assert!(events.contains(&"eval:1:true".to_string()), "{events:?}");

        // A vanished artifact falls back to rendering, same results.
        for entry in std::fs::read_dir(&dir).expect("ls") {
            let _ = std::fs::remove_file(entry.expect("entry").path());
        }
        let recorder = Recorder::default();
        let refetched = exec.execute(&warm_plan, &traces, &recorder, &|_, _| {});
        for (a, b) in refetched.iter().zip(&reference) {
            assert_eq!(a.report, b.report, "refetch cell {}", a.cell.id);
        }
        let events = recorder.0.into_inner().unwrap();
        assert_eq!(events.iter().filter(|e| *e == "render:ccs").count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inflight_follower_reuses_the_leaders_artifact() {
        let grid = tiny_grid();
        let plan = SweepPlan::compile(&grid);
        let opts = SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        };
        let traces = capture_traces(&grid, &opts).expect("capture");
        let reference = ThreadExecutor {
            workers: 1,
            ..ThreadExecutor::default()
        }
        .execute(&plan, &traces, &NullObserver, &|_, _| {});

        let dir = tmp_dir("async_inflight");
        let registry = InFlightRenders::new();
        let key = plan.render_jobs()[0].key;
        let file_key = crate::artifacts::RenderLogCache::file_key(&key);

        // The test thread plays the leader deterministically: claim the
        // key, *then* start an execution that must become a follower.
        let lease = match registry.begin(&file_key) {
            FlightClaim::Leader(l) => l,
            FlightClaim::Follower(_) => panic!("fresh registry must grant leadership"),
        };
        assert_eq!(registry.len(), 1);

        let recorder = Recorder::default();
        let follower = std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                AsyncExecutor {
                    workers: 2,
                    log_dir: Some(dir.clone()),
                    heartbeat: None,
                    in_flight: Some(Arc::clone(&registry)),
                    ..AsyncExecutor::default()
                }
                .execute(&plan, &traces, &recorder, &|_, _| {})
            });
            // Publish the artifact the follower is waiting for.
            let cache = crate::artifacts::RenderLogCache::new(Some(dir.clone()));
            let log = crate::engine::render_key_log(&traces[key.scene()], &key);
            let path = cache.store(&key, &log).expect("store").expect("path");
            lease.finish(Some(path));
            handle.join().expect("follower execution")
        });
        assert!(registry.is_empty(), "finished flights are deregistered");
        for (a, b) in follower.iter().zip(&reference) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.report, b.report, "cell {}", a.cell.id);
        }
        let events = recorder.0.into_inner().unwrap();
        assert!(
            !events.iter().any(|e| e.starts_with("render:")),
            "the follower must not rasterize: {events:?}"
        );
        assert!(
            events.contains(&"replay:ccs".to_string()),
            "the follower announces the reuse: {events:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_lease_unblocks_followers_with_none() {
        let registry = InFlightRenders::new();
        let lease = match registry.begin("k") {
            FlightClaim::Leader(l) => l,
            FlightClaim::Follower(_) => panic!("fresh registry must grant leadership"),
        };
        let waiter = match registry.begin("k") {
            FlightClaim::Follower(w) => w,
            FlightClaim::Leader(_) => panic!("second claim must follow"),
        };
        let handle = std::thread::spawn(move || waiter.wait());
        // The leader dies without publishing (panic, I/O error, …): the
        // drop guard must release the follower rather than hang it.
        drop(lease);
        assert_eq!(handle.join().expect("waiter"), None);
        assert!(registry.is_empty(), "aborted flights are deregistered");
        // The key is claimable again afterwards.
        assert!(matches!(registry.begin("k"), FlightClaim::Leader(_)));
    }

    #[test]
    fn multi_observer_fans_out() {
        let a = Arc::new(Recorder::default());
        let b = Arc::new(Recorder::default());
        let multi = MultiObserver::new(vec![
            Arc::clone(&a) as Arc<dyn SweepObserver>,
            Arc::clone(&b) as Arc<dyn SweepObserver>,
        ]);
        multi.on_event(&SweepEvent::StoreResume {
            resumed: 1,
            pending: 2,
        });
        assert_eq!(*a.0.lock().unwrap(), vec!["resume:1+2".to_string()]);
        assert_eq!(*b.0.lock().unwrap(), vec!["resume:1+2".to_string()]);
    }
}
