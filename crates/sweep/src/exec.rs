//! Plan execution: the [`Executor`] trait, its in-process
//! [`ThreadExecutor`], and the [`SweepObserver`] progress-event channel.
//!
//! An executor takes a compiled [`SweepPlan`] plus the captured traces and
//! runs the plan's jobs, returning outcomes in cell-id order. The contract
//! every implementation must keep:
//!
//! * **render-once** — with grouping, each [`crate::plan::RenderJob`] runs
//!   Stage A exactly once and its log is shared by the job's eval cells;
//! * **deterministic output** — outcomes are returned in cell-id order and
//!   each report is a pure function of the cell, so results are
//!   byte-identical across worker counts, scheduling, and executors.
//!
//! [`ThreadExecutor`] is the std-thread work-stealing implementation (the
//! engine's default); an async executor is the planned second
//! implementation — the plan/executor split is exactly that seam.
//!
//! Progress is reported through [`SweepObserver`] events instead of
//! hardwired `eprintln!`: the CLI installs [`StderrObserver`] (the classic
//! `[sweep] …` lines), embedders can install their own, and
//! [`NullObserver`] silences everything (what `quiet` does).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use re_core::render::RenderLog;
use re_core::RunReport;
use re_trace::Trace;

use crate::engine::{render_key_log, run_cell, CellOutcome};
use crate::grid::Cell;
use crate::plan::SweepPlan;
use crate::pool;

/// One progress event of a running sweep.
///
/// Events carry every number an observer could want to display, so
/// observers stay stateless formatters.
#[derive(Debug, Clone)]
pub enum SweepEvent<'a> {
    /// A workload's trace is being captured (or loaded from the cache).
    CaptureStart {
        /// Workload alias.
        scene: &'static str,
        /// Frames captured.
        frames: usize,
    },
    /// A grouped execution is starting: `cells` eval jobs share
    /// `render_jobs` Stage A renders.
    GroupStart {
        /// Eval jobs in the plan.
        cells: usize,
        /// Render jobs in the plan.
        render_jobs: usize,
    },
    /// A render job is starting Stage A.
    RenderStart {
        /// Workload alias of the render key.
        scene: &'static str,
        /// Tile edge of the render key.
        tile_size: u32,
    },
    /// A render job is satisfied by a cached `.relog`: its cells replay
    /// the artifact from disk and Stage A never runs (emitted once per
    /// job, by the first cell to reach it).
    RenderLogReplay {
        /// Workload alias of the render key.
        scene: &'static str,
        /// Tile edge of the render key.
        tile_size: u32,
    },
    /// A freshly rendered log was persisted to the render-log cache;
    /// future resumes and re-executions of this key will skip Stage A.
    RenderLogSaved {
        /// Workload alias of the render key.
        scene: &'static str,
        /// Tile edge of the render key.
        tile_size: u32,
    },
    /// One cell finished.
    CellDone {
        /// Cells finished so far (this execution).
        done: usize,
        /// Cells in this execution.
        total: usize,
        /// The cell's human-readable label.
        label: &'a str,
        /// Mean completion rate since the execution started.
        cells_per_sec: f64,
    },
    /// A store run found `resumed` cells already complete and will run the
    /// remaining `pending`.
    StoreResume {
        /// Cells already in the store.
        resumed: usize,
        /// Cells left to run.
        pending: usize,
    },
}

/// Receives [`SweepEvent`]s from a running sweep.
///
/// Carried in [`crate::SweepOptions`]; must be `Send + Sync` because
/// workers emit events concurrently.
pub trait SweepObserver: Send + Sync {
    /// Called for every event, possibly from multiple threads at once.
    fn on_event(&self, event: &SweepEvent<'_>);
}

/// The classic stderr progress lines (`[sweep] …`) — the default observer
/// of a non-quiet sweep.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrObserver;

impl SweepObserver for StderrObserver {
    fn on_event(&self, event: &SweepEvent<'_>) {
        match *event {
            SweepEvent::CaptureStart { scene, frames } => {
                eprintln!("[sweep] capturing {scene} ({frames} frames)…");
            }
            SweepEvent::GroupStart { cells, render_jobs } => {
                eprintln!("[sweep] render grouping: {cells} cells share {render_jobs} render keys");
            }
            SweepEvent::RenderStart { scene, tile_size } => {
                eprintln!("[sweep] rendering {scene} ts{tile_size}…");
            }
            SweepEvent::RenderLogReplay { scene, tile_size } => {
                eprintln!("[sweep] replaying cached render log for {scene} ts{tile_size}");
            }
            SweepEvent::RenderLogSaved { scene, tile_size } => {
                eprintln!("[sweep] cached render log for {scene} ts{tile_size}");
            }
            SweepEvent::CellDone {
                done,
                total,
                label,
                cells_per_sec,
            } => {
                eprintln!("[sweep] {done}/{total} {label}  ({cells_per_sec:.2} cells/s)");
            }
            SweepEvent::StoreResume { resumed, pending } => {
                eprintln!("[sweep] resuming: {resumed} cells already complete, {pending} to run");
            }
        }
    }
}

/// Swallows every event (what `quiet` installs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SweepObserver for NullObserver {
    fn on_event(&self, _event: &SweepEvent<'_>) {}
}

/// Runs a [`SweepPlan`]'s jobs against already-captured traces.
///
/// `on_done` is invoked from worker context as each cell completes (the
/// store's commit hook); outcomes come back in cell-id order regardless of
/// scheduling.
pub trait Executor {
    /// Executes every job of `plan` and returns one outcome per eval job,
    /// in cell-id order.
    fn execute(
        &self,
        plan: &SweepPlan,
        traces: &HashMap<&'static str, Arc<Trace>>,
        observer: &dyn SweepObserver,
        on_done: &(dyn Fn(&Cell, &RunReport) + Sync),
    ) -> Vec<CellOutcome>;
}

/// Progress accounting shared by the workers of one execution.
struct Progress<'o> {
    done: AtomicUsize,
    total: usize,
    start: Instant,
    observer: &'o dyn SweepObserver,
}

impl<'o> Progress<'o> {
    fn new(total: usize, observer: &'o dyn SweepObserver) -> Self {
        Progress {
            done: AtomicUsize::new(0),
            total,
            start: Instant::now(),
            observer,
        }
    }

    fn cell_done(&self, label: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let secs = self.start.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        self.observer.on_event(&SweepEvent::CellDone {
            done,
            total: self.total,
            label,
            cells_per_sec: rate,
        });
    }
}

/// A render job's shared state: the lazily built log plus the number of
/// cells still due to evaluate it (the log is dropped with the last one).
struct GroupSlot {
    log: Mutex<Option<Arc<RenderLog>>>,
    remaining: AtomicUsize,
    /// Whether the one-per-job replay event was already emitted.
    replay_announced: std::sync::atomic::AtomicBool,
}

/// The std-thread work-stealing executor (the engine's default).
///
/// Eval jobs are seeded round-robin over the work-stealing
/// [`pool`], so different workers tend to reach different render jobs
/// first and Stage A parallelizes across keys; within a job, the first
/// worker renders (holding only that job's lock) and the rest evaluate
/// the shared log, which is freed as its last cell finishes.
///
/// Render jobs a cached `.relog` satisfies ([`RenderJob::cached_log`])
/// never run Stage A at all: each of their cells replays the artifact
/// through [`re_core::relog::RelogReader`], frame by frame, holding at
/// most one frame in memory. With [`log_dir`](Self::log_dir) set, jobs
/// that *do* render persist their log on completion, so the next
/// execution of the same keys is raster-free.
///
/// [`RenderJob::cached_log`]: crate::plan::RenderJob::cached_log
#[derive(Debug, Clone)]
pub struct ThreadExecutor {
    /// Worker threads; 0 means [`pool::default_workers`].
    pub workers: usize,
    /// Render each key once and share the log across its cells (the
    /// default). Disable to rebuild Stage A per cell — only useful for
    /// baselining and equivalence tests (cached logs are ignored too: the
    /// per-cell path measures the full monolithic pipeline).
    pub group_renders: bool,
    /// Directory to persist freshly rendered `.relog` artifacts into
    /// (`None` = don't write). Writes are best-effort: a full disk costs
    /// the cache entry, never the sweep.
    pub log_dir: Option<std::path::PathBuf>,
}

impl Default for ThreadExecutor {
    fn default() -> Self {
        ThreadExecutor {
            workers: 0,
            group_renders: true,
            log_dir: None,
        }
    }
}

impl ThreadExecutor {
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            pool::default_workers()
        } else {
            self.workers
        }
    }
}

impl Executor for ThreadExecutor {
    fn execute(
        &self,
        plan: &SweepPlan,
        traces: &HashMap<&'static str, Arc<Trace>>,
        observer: &dyn SweepObserver,
        on_done: &(dyn Fn(&Cell, &RunReport) + Sync),
    ) -> Vec<CellOutcome> {
        let jobs = plan.eval_jobs().to_vec();
        let progress = Progress::new(jobs.len(), observer);

        if !self.group_renders {
            return pool::run_indexed(jobs, self.effective_workers(), |_i, job| {
                let trace = &traces[job.cell.scene()];
                let report = run_cell(trace, &job.cell);
                on_done(&job.cell, &report);
                progress.cell_done(&job.cell.label());
                CellOutcome {
                    cell: job.cell,
                    report,
                }
            });
        }

        // One slot per render job, indexed by the job's plan position.
        let slots: Vec<GroupSlot> = plan
            .render_jobs()
            .iter()
            .map(|rj| GroupSlot {
                log: Mutex::new(None),
                remaining: AtomicUsize::new(rj.cells.len()),
                replay_announced: std::sync::atomic::AtomicBool::new(false),
            })
            .collect();
        observer.on_event(&SweepEvent::GroupStart {
            cells: jobs.len(),
            render_jobs: slots.len(),
        });
        let log_cache = crate::artifacts::RenderLogCache::new(self.log_dir.clone());

        pool::run_indexed(jobs, self.effective_workers(), |_i, job| {
            let render_job = &plan.render_jobs()[job.render_job];
            let key = &render_job.key;
            let slot = &slots[job.render_job];
            let opts = job.cell.point.sim_options();

            // Satisfied job: stream the cached artifact instead of
            // rendering — frame by frame, so memory stays bounded to one
            // frame per worker no matter how many cells share the key.
            if let Some(path) = &render_job.cached_log {
                if !slot.replay_announced.swap(true, Ordering::Relaxed) {
                    observer.on_event(&SweepEvent::RenderLogReplay {
                        scene: key.scene(),
                        tile_size: key.tile_size(),
                    });
                }
                let streamed = re_core::relog::RelogReader::open(path)
                    .and_then(|mut r| re_core::relog::evaluate_reader(&mut r, &opts));
                if let Ok(report) = streamed {
                    on_done(&job.cell, &report);
                    progress.cell_done(&job.cell.label());
                    return CellOutcome {
                        cell: job.cell,
                        report,
                    };
                }
                // The artifact was validated when the plan was annotated,
                // so a failure here means it changed underneath us —
                // fall through and render the key like any other job.
            }

            let log = {
                let mut guard = slot.log.lock().expect("group slot poisoned");
                match guard.as_ref() {
                    Some(log) => Arc::clone(log),
                    None => {
                        observer.on_event(&SweepEvent::RenderStart {
                            scene: key.scene(),
                            tile_size: key.tile_size(),
                        });
                        let trace = match traces.get(key.scene()) {
                            Some(t) => Arc::clone(t),
                            // Traces are only captured for unsatisfied
                            // jobs; if a satisfied job's artifact just
                            // vanished, capture its trace on the fly.
                            None => Arc::new(
                                crate::artifacts::capture_alias(
                                    key.scene(),
                                    key.frames(),
                                    re_gpu::GpuConfig {
                                        width: key.gpu_config().width,
                                        height: key.gpu_config().height,
                                        ..re_gpu::GpuConfig::default()
                                    },
                                )
                                .expect("workload aliases in a plan are known"),
                            ),
                        };
                        let log = Arc::new(render_key_log(&trace, key));
                        // Persist for future runs (best-effort: the cache
                        // is an optimization, never a failure source).
                        if render_job.cached_log.is_none() {
                            if let Ok(Some(_)) = log_cache.store(key, &log) {
                                observer.on_event(&SweepEvent::RenderLogSaved {
                                    scene: key.scene(),
                                    tile_size: key.tile_size(),
                                });
                            }
                        }
                        *guard = Some(Arc::clone(&log));
                        log
                    }
                }
            };
            let report = re_core::evaluate(&log, &opts);
            drop(log);
            // Last cell of the job: free the log's memory early instead of
            // keeping every job's log alive until the sweep ends.
            if slot.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                *slot.log.lock().expect("group slot poisoned") = None;
            }
            on_done(&job.cell, &report);
            progress.cell_done(&job.cell.label());
            CellOutcome {
                cell: job.cell,
                report,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis;
    use crate::engine::capture_traces;
    use crate::grid::ExperimentGrid;
    use crate::SweepOptions;

    fn tiny_grid() -> ExperimentGrid {
        let mut g = ExperimentGrid::default()
            .with_scenes(&["ccs"])
            .with_axis(axis::SIG_BITS, vec![16, 32]);
        g.frames = 2;
        g.width = 128;
        g.height = 64;
        g
    }

    /// Collects events (thread-safely) for assertions.
    #[derive(Default)]
    struct Recorder(Mutex<Vec<String>>);

    impl SweepObserver for Recorder {
        fn on_event(&self, event: &SweepEvent<'_>) {
            let tag = match event {
                SweepEvent::CaptureStart { scene, .. } => format!("capture:{scene}"),
                SweepEvent::GroupStart { cells, render_jobs } => {
                    format!("group:{cells}/{render_jobs}")
                }
                SweepEvent::RenderStart { scene, .. } => format!("render:{scene}"),
                SweepEvent::RenderLogReplay { scene, .. } => format!("replay:{scene}"),
                SweepEvent::RenderLogSaved { scene, .. } => format!("logsaved:{scene}"),
                SweepEvent::CellDone { done, total, .. } => format!("done:{done}/{total}"),
                SweepEvent::StoreResume { resumed, pending } => {
                    format!("resume:{resumed}+{pending}")
                }
            };
            self.0.lock().unwrap().push(tag);
        }
    }

    #[test]
    fn thread_executor_runs_a_plan_and_reports_events() {
        let grid = tiny_grid();
        let plan = SweepPlan::compile(&grid);
        let opts = SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        };
        let traces = capture_traces(&grid, &opts).expect("capture");
        let recorder = Recorder::default();
        let count = AtomicUsize::new(0);
        let exec = ThreadExecutor {
            workers: 2,
            group_renders: true,
            log_dir: None,
        };
        let outcomes = exec.execute(&plan, &traces, &recorder, &|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outcomes.len(), 2);
        assert_eq!(count.load(Ordering::Relaxed), 2);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.cell.id, i);
        }
        let events = recorder.0.into_inner().unwrap();
        assert!(events.contains(&"group:2/1".to_string()), "{events:?}");
        // One render (one key), two cell completions.
        assert_eq!(events.iter().filter(|e| *e == "render:ccs").count(), 1);
        assert!(events.contains(&"done:2/2".to_string()), "{events:?}");
    }

    #[test]
    fn grouped_and_per_cell_executors_agree() {
        let grid = tiny_grid();
        let plan = SweepPlan::compile(&grid);
        let opts = SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        };
        let traces = capture_traces(&grid, &opts).expect("capture");
        let run = |group_renders| {
            ThreadExecutor {
                workers: 2,
                group_renders,
                log_dir: None,
            }
            .execute(&plan, &traces, &NullObserver, &|_, _| {})
        };
        let (grouped, per_cell) = (run(true), run(false));
        assert_eq!(grouped.len(), per_cell.len());
        for (a, b) in grouped.iter().zip(&per_cell) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.report, b.report);
        }
    }
}
