//! A small work-stealing thread pool on std primitives.
//!
//! Cells of a sweep vary wildly in cost (an FPS scene at tile size 8 takes
//! far longer than a static puzzle at 32), so static partitioning leaves
//! workers idle. Here every worker owns a deque seeded round-robin; it pops
//! work from its own front and, when empty, steals from the *back* of a
//! sibling — the classic split that keeps owner and thief on opposite ends.
//! No task ever re-enters a deque, so "every deque empty" is a sound
//! termination condition.
//!
//! Results are reported with their original index and re-assembled in input
//! order, which is what makes sweep output independent of worker count.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Runs `work` over `items` on `workers` threads and returns the results in
/// input order. `work` is called as `work(worker, index, item)` — the
/// worker id (`0..workers`) lets callers attribute time and events to the
/// thread that did the work. `workers` is clamped to `1..=items.len()`;
/// with one worker everything runs on the caller's thread as worker 0,
/// which keeps single-worker runs trivially deterministic to schedule
/// (the *results* are identical either way).
pub fn run_indexed<I, R, F>(items: Vec<I>, workers: usize, work: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, usize, I) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);

    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| work(0, i, item))
            .collect();
    }

    // Seed the deques round-robin so every worker starts with a share of
    // each region of the grid (neighbouring cells tend to cost alike).
    let mut deques: Vec<VecDeque<(usize, I)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].push_back((i, item));
    }
    let deques: Vec<Mutex<VecDeque<(usize, I)>>> = deques.into_iter().map(Mutex::new).collect();

    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let work = &work;
            scope.spawn(move || {
                loop {
                    // Own queue first (front), then steal (back). The own
                    // pop must be a separate statement: chaining `.or_else`
                    // onto it would keep the own-deque guard (a
                    // statement-long temporary) alive across the steal
                    // scan, and two simultaneously-idle workers would then
                    // hold-and-wait on each other's locks — deadlock.
                    let own = deques[w].lock().expect("pool poisoned").pop_front();
                    let task = match own {
                        Some(t) => Some(t),
                        None => (1..workers).find_map(|d| {
                            deques[(w + d) % workers]
                                .lock()
                                .expect("pool poisoned")
                                .pop_back()
                        }),
                    };
                    match task {
                        Some((i, item)) => {
                            let r = work(w, i, item);
                            // The receiver lives past the scope; send only
                            // fails if the caller's thread panicked.
                            let _ = tx.send((i, r));
                        }
                        None => break,
                    }
                }
            });
        }
        drop(tx);
    });

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx.try_iter() {
        debug_assert!(out[i].is_none(), "result {i} delivered twice");
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("worker dropped a task without a result"))
        .collect()
}

/// The default worker count: the `RE_SWEEP_WORKERS` environment override
/// when it is set to a positive integer (so CI and containers can pin
/// worker counts without threading a flag through every harness),
/// otherwise one per available hardware thread. Unset values fall
/// through to the hardware count silently; an empty, zero or
/// non-numeric value also falls through, but with a one-line stderr
/// warning (once per process) naming the bad value and the fallback —
/// a typo'd pin should not masquerade as a deliberate hardware-count
/// run.
pub fn default_workers() -> usize {
    let fallback = || std::thread::available_parallelism().map_or(1, |n| n.get());
    if let Ok(v) = std::env::var("RE_SWEEP_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        let n = fallback();
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "[sweep] warning: RE_SWEEP_WORKERS={v:?} is not a positive \
                 integer; using the hardware thread count ({n})"
            );
        });
        return n;
    }
    fallback()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        for workers in [1, 2, 4, 9] {
            let items: Vec<u64> = (0..100).collect();
            let out = run_indexed(items, workers, |w, i, x| {
                assert!(w < workers.max(1));
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = run_indexed((0..57).collect::<Vec<_>>(), 8, |_, _, x: i32| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 57);
        assert_eq!(out.len(), 57);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One giant task up front; the other workers must drain the rest.
        let worker_ids = Mutex::new(std::collections::HashSet::new());
        run_indexed((0..64).collect::<Vec<_>>(), 4, |w, i, _| {
            worker_ids.lock().unwrap().insert(w);
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
        });
        assert!(worker_ids.lock().unwrap().len() > 1, "work never spread");
    }

    #[test]
    fn empty_and_oversubscribed() {
        assert!(run_indexed(Vec::<u8>::new(), 4, |_, _, x| x).is_empty());
        assert_eq!(run_indexed(vec![7u8], 64, |w, _, x| x + w as u8), vec![7]);
        assert!(default_workers() >= 1);
    }

    #[test]
    fn env_var_overrides_default_workers() {
        // Serialized with nothing: no other test in this binary reads the
        // variable between set and remove.
        std::env::set_var("RE_SWEEP_WORKERS", "3");
        assert_eq!(default_workers(), 3);
        // Invalid values fall through to the hardware count.
        std::env::set_var("RE_SWEEP_WORKERS", "0");
        assert!(default_workers() >= 1);
        std::env::set_var("RE_SWEEP_WORKERS", "many");
        assert!(default_workers() >= 1);
        std::env::remove_var("RE_SWEEP_WORKERS");
        assert!(default_workers() >= 1);
    }
}
