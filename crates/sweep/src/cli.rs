//! Command-line parsing for the `sweep` binary, generated from the axis
//! registry.
//!
//! Every axis flag — its name, list parsing, domain validation and help
//! line — comes from [`crate::axis::AXES`]; this module only knows the
//! fixed execution flags (`--out`, `--workers`, `--frames`, screen size,
//! trace cache, grouping, verbosity). Registering a new axis therefore
//! extends the CLI, `--help` and the `sweep axes` table with no changes
//! here.
//!
//! Unknown flags are rejected with a nearest-flag suggestion, and
//! duplicate values inside an axis list are an error (the grid would
//! simulate the same cell twice).

use std::path::PathBuf;

use crate::axis::{self, AxisClass, Presence, AXES};
use crate::engine::SweepOptions;
use crate::grid::ExperimentGrid;
use crate::plan::ShardSpec;

/// Arguments of a `sweep` run (the default subcommand).
#[derive(Debug)]
pub struct RunArgs {
    /// The experiment grid to enumerate.
    pub grid: ExperimentGrid,
    /// Execution options.
    pub opts: SweepOptions,
    /// Store directory.
    pub out: PathBuf,
    /// Whether to persist to the store (`--no-store` clears it).
    pub store: bool,
    /// Which shard of the plan to run (`--shard K/N`; `None` = all of it).
    pub shard: Option<ShardSpec>,
    /// Where to dump the `metrics.json` registry snapshot (`--metrics`).
    pub metrics: Option<PathBuf>,
    /// Whether to write the `events.jsonl` run log beside the store
    /// (`--no-events` turns it off; memory-only runs never write one).
    pub events: bool,
    /// Effective imported-trace directory (`--import-dir`, default
    /// `<out>/imports`) — already scanned by the time parsing returns, and
    /// forwarded verbatim to fleet worker processes.
    pub import_dir: PathBuf,
}

/// A parsed `sweep` invocation.
#[derive(Debug)]
pub enum Command {
    /// Run a grid (optionally against a store).
    Run(Box<RunArgs>),
    /// Digest an existing store into comparison/marginal tables.
    Report {
        /// Store directory to read.
        store: PathBuf,
    },
    /// Union per-shard stores into one (validated) store.
    Merge {
        /// Output store directory (fresh or empty).
        out: PathBuf,
        /// Input (per-shard) store directories.
        inputs: Vec<PathBuf>,
    },
    /// Digest a store's `events.jsonl` run log into a timing profile.
    Profile {
        /// Store directory whose run log to read.
        store: PathBuf,
    },
    /// Validate an external `.retrace` capture and install it as a
    /// `trace:<alias>` scene-axis value.
    Import {
        /// Source capture (bare or RETRIMP1-enveloped).
        src: PathBuf,
        /// Alias override (`--as`; default: the sanitized file stem).
        alias: Option<String>,
        /// Import directory to install into.
        dir: PathBuf,
    },
    /// Print the axis registry table.
    Axes,
    /// Print usage and exit.
    Help,
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
/// A ready-to-print message for unknown flags (with a nearest-flag
/// suggestion), bad or duplicate values, and missing flag arguments.
pub fn parse(argv: &[String]) -> Result<Command, String> {
    match argv.first().map(String::as_str) {
        Some("report") => parse_report(&argv[1..]),
        Some("profile") => parse_profile(&argv[1..]),
        Some("merge") => parse_merge(&argv[1..]),
        Some("import") => parse_import(&argv[1..]),
        Some("axes") => parse_axes(&argv[1..]),
        _ => parse_run(argv),
    }
}

fn parse_axes(argv: &[String]) -> Result<Command, String> {
    let mut out: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return Err("axes: --out needs a value".into()),
            },
            "--import-dir" => match it.next() {
                Some(v) => dir = Some(PathBuf::from(v)),
                None => return Err("axes: --import-dir needs a value".into()),
            },
            "-h" | "--help" => return Ok(Command::Help),
            other => {
                return Err(format!(
                    "axes takes only --import-dir/--out (got `{other}`)"
                ))
            }
        }
    }
    // Register before rendering so the table lists `trace:` aliases.
    let dir = dir.unwrap_or_else(|| {
        crate::importer::import_dir_for(&out.unwrap_or_else(|| PathBuf::from("sweep-out")))
    });
    register_imports(&dir)?;
    Ok(Command::Axes)
}

fn parse_import(argv: &[String]) -> Result<Command, String> {
    let mut src: Option<PathBuf> = None;
    let mut alias: Option<String> = None;
    let mut out = PathBuf::from("sweep-out");
    let mut dir: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--as" => match it.next() {
                Some(v) => alias = Some(v.clone()),
                None => return Err("import: --as needs a value".into()),
            },
            "--out" => match it.next() {
                Some(v) => out = PathBuf::from(v),
                None => return Err("import: --out needs a value".into()),
            },
            "--import-dir" => match it.next() {
                Some(v) => dir = Some(PathBuf::from(v)),
                None => return Err("import: --import-dir needs a value".into()),
            },
            "-h" | "--help" => return Ok(Command::Help),
            flag if flag.starts_with('-') => {
                return Err(unknown_flag(
                    flag,
                    &["--as", "--out", "--import-dir", "--help"],
                ));
            }
            file => match src {
                None => src = Some(PathBuf::from(file)),
                Some(_) => return Err(format!("import: one source file only (got `{file}` too)")),
            },
        }
    }
    let src = src
        .ok_or("import: usage is `sweep import <file.retrace> [--as ALIAS] [--import-dir DIR]`")?;
    let dir = dir.unwrap_or_else(|| crate::importer::import_dir_for(&out));
    Ok(Command::Import { src, alias, dir })
}

/// Resolves the effective import directory from raw argv. This is a
/// pre-pass: the scene axis cannot parse `trace:<alias>` values until the
/// directory has been scanned, and flags may appear in any order, so the
/// scan must run before the normal flag loop.
fn import_dir_from(argv: &[String]) -> PathBuf {
    let mut out = PathBuf::from("sweep-out");
    let mut dir: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => {
                if let Some(v) = it.next() {
                    out = PathBuf::from(v);
                }
            }
            "--import-dir" => {
                if let Some(v) = it.next() {
                    dir = Some(PathBuf::from(v));
                }
            }
            _ => {}
        }
    }
    dir.unwrap_or_else(|| crate::importer::import_dir_for(&out))
}

/// Scans an import directory into the scene-source registry, warning (on
/// stderr) about files that fail validation rather than failing runs that
/// never name them.
fn register_imports(dir: &std::path::Path) -> Result<(), String> {
    let summary = crate::importer::register_dir(dir)
        .map_err(|e| format!("--import-dir {}: {e}", dir.display()))?;
    for (path, why) in &summary.skipped {
        eprintln!("warning: skipping import {}: {why}", path.display());
    }
    Ok(())
}

fn parse_report(argv: &[String]) -> Result<Command, String> {
    let mut store = PathBuf::from("sweep-out");
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--store" => match it.next() {
                Some(dir) => store = PathBuf::from(dir),
                None => return Err("report: --store needs a value".into()),
            },
            "-h" | "--help" => return Ok(Command::Help),
            other => return Err(unknown_flag(other, &["--store", "--help"])),
        }
    }
    Ok(Command::Report { store })
}

fn parse_profile(argv: &[String]) -> Result<Command, String> {
    let mut store = PathBuf::from("sweep-out");
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--store" => match it.next() {
                Some(dir) => store = PathBuf::from(dir),
                None => return Err("profile: --store needs a value".into()),
            },
            "-h" | "--help" => return Ok(Command::Help),
            other => return Err(unknown_flag(other, &["--store", "--help"])),
        }
    }
    Ok(Command::Profile { store })
}

fn parse_merge(argv: &[String]) -> Result<Command, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    for arg in argv {
        match arg.as_str() {
            "-h" | "--help" => return Ok(Command::Help),
            flag if flag.starts_with('-') => {
                return Err(format!("merge takes no flags (got `{flag}`)"));
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    if dirs.len() < 2 {
        return Err("merge: usage is `sweep merge <out> <in>...` \
                    (an output directory plus at least one input store)"
            .into());
    }
    let out = dirs.remove(0);
    Ok(Command::Merge { out, inputs: dirs })
}

/// Fixed (non-axis) flags of the run subcommand, for suggestions.
const RUN_FLAGS: &[&str] = &[
    "--out",
    "--no-store",
    "--workers",
    "--render-workers",
    "--relog-compress",
    "--heartbeat-ms",
    "--shard",
    "--frames",
    "--width",
    "--height",
    "--trace-dir",
    "--log-dir",
    "--import-dir",
    "--no-log-cache",
    "--no-group",
    "--metrics",
    "--no-events",
    "--quiet",
    "--help",
];

fn parse_run(argv: &[String]) -> Result<Command, String> {
    // Imported traces must be registered before `--scenes trace:<alias>`
    // is parsed, whatever the flag order.
    let import_dir = import_dir_from(argv);
    register_imports(&import_dir)?;

    let mut grid = ExperimentGrid::default();
    let mut opts = SweepOptions::default();
    let mut out = PathBuf::from("sweep-out");
    let mut store = true;
    let mut trace_dir: Option<PathBuf> = None;
    let mut log_dir: Option<PathBuf> = None;
    let mut log_cache = true;
    let mut shard: Option<ShardSpec> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut events = true;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or(format!("{flag} needs a value"))
        };
        if let Some(a) = axis::by_flag(flag) {
            let values = AXES[a].parse_list(value()?)?;
            grid.set_axis(a, values)
                .map_err(|e| format!("{flag}: {e}"))?;
            continue;
        }
        match flag.as_str() {
            "--out" => out = PathBuf::from(value()?),
            "--no-store" => store = false,
            "--workers" => opts.workers = value()?.parse().map_err(|_| "--workers: bad value")?,
            "--render-workers" => {
                opts.render_workers = value()?
                    .parse()
                    .map_err(|_| "--render-workers: bad value")?
            }
            "--relog-compress" => {
                opts.relog_compress = match value()? {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!("--relog-compress: `{other}` is not `on` or `off`"))
                    }
                }
            }
            "--heartbeat-ms" => {
                let ms: u64 = value()?.parse().map_err(|_| "--heartbeat-ms: bad value")?;
                opts.heartbeat = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--shard" => {
                shard = Some(ShardSpec::parse(value()?).map_err(|e| format!("--shard: {e}"))?)
            }
            "--frames" => {
                grid.frames = value()?.parse().map_err(|_| "--frames: bad value")?;
                if grid.frames == 0 {
                    return Err("--frames: at least one frame is required".into());
                }
            }
            "--width" => grid.width = value()?.parse().map_err(|_| "--width: bad value")?,
            "--height" => grid.height = value()?.parse().map_err(|_| "--height: bad value")?,
            "--trace-dir" => trace_dir = Some(PathBuf::from(value()?)),
            "--log-dir" => log_dir = Some(PathBuf::from(value()?)),
            // Consumed by the pre-pass above; just skip the value here.
            "--import-dir" => {
                value()?;
            }
            "--no-log-cache" => log_cache = false,
            "--no-group" => opts.group_renders = false,
            "--metrics" => metrics = Some(PathBuf::from(value()?)),
            "--no-events" => events = false,
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => return Ok(Command::Help),
            other => {
                let known: Vec<&str> = AXES
                    .iter()
                    .map(|a| a.flag)
                    .chain(RUN_FLAGS.iter().copied())
                    .collect();
                return Err(unknown_flag(other, &known));
            }
        }
    }
    // With a store, captures default to living beside it; a memory-only run
    // caches traces only when a directory was explicitly given.
    opts.trace_dir = match (store, trace_dir) {
        (_, Some(dir)) => Some(dir),
        (true, None) => Some(out.join("traces")),
        (false, None) => None,
    };
    // Render logs default to living next to the `.retrace` files, so a
    // resumed or re-sharded run finds both artifact kinds in one place;
    // `--no-log-cache` turns the `.relog` side off entirely.
    opts.log_dir = if log_cache {
        log_dir.or_else(|| opts.trace_dir.clone())
    } else {
        if log_dir.is_some() {
            return Err("--no-log-cache contradicts --log-dir".into());
        }
        None
    };
    Ok(Command::Run(Box::new(RunArgs {
        grid,
        opts,
        out,
        store,
        shard,
        metrics,
        events,
        import_dir,
    })))
}

/// Levenshtein distance (small inputs: flags are short).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// "unknown flag" error with the closest known flag as a suggestion: a
/// flag the input is a prefix of wins (`--sig` → `--sig-bits`), otherwise
/// the smallest edit distance within a typo-sized bound.
fn unknown_flag(flag: &str, known: &[&str]) -> String {
    let by_prefix = known
        .iter()
        .filter(|k| flag.len() > 2 && k.starts_with(flag))
        .min_by_key(|k| k.len());
    let suggestion = by_prefix
        .copied()
        .or_else(|| {
            known
                .iter()
                .map(|k| (edit_distance(flag, k), *k))
                .min()
                .filter(|&(d, _)| d <= 3)
                .map(|(_, k)| k)
        })
        .map(|k| format!(" (did you mean `{k}`?)"));
    format!(
        "unknown flag `{flag}`{} — try --help or `sweep axes`",
        suggestion.unwrap_or_default()
    )
}

/// The `--help` text; the per-axis option lines are generated from the
/// registry.
pub fn usage() -> String {
    let mut out = String::from(
        "sweep — parallel experiment orchestration for the RE reproduction

USAGE:
    sweep [OPTIONS]
    sweep report [--store DIR]
    sweep profile [--store DIR]
    sweep merge <out> <in>...
    sweep import <file.retrace> [--as ALIAS] [--import-dir DIR]
    sweep axes [--import-dir DIR]
    sweep serve [--addr HOST:PORT] [--root DIR]
    sweep client --addr HOST:PORT <verb> [ARGS]

OPTIONS:
    --out DIR           result-store directory (default: sweep-out; resumable)
    --no-store          run in memory only, print the CSV to stdout
    --workers N         worker threads (default: all hardware threads, or
                        the RE_SWEEP_WORKERS environment override)
    --render-workers N  threads one Stage A render may spread its frames
                        over (default: match --workers; 1 = serial Stage A;
                        results are bit-identical at any setting)
    --shard K/N         run only shard K of N (1-based; partitioned by
                        render key, so each shard rasterizes its keys once)
    --heartbeat-ms N    cadence of the progress heartbeat the executor
                        writes even while every worker is busy (default:
                        10000; 0 disables it) — supervisors tailing
                        events.jsonl tighten this for liveness checks
    --frames N          frames per cell (default: 24)
    --width W           screen width (default: 400)
    --height H          screen height (default: 256)
",
    );
    for a in &AXES {
        let head = format!("{} LIST", a.flag);
        let default = if a.default_all {
            "all".to_string()
        } else {
            a.format_value(a.default)
        };
        if head.len() <= 19 {
            out.push_str(&format!(
                "    {head:<19} {}, {} (default: {default})\n",
                a.help, a.domain
            ));
        } else {
            out.push_str(&format!(
                "    {head}\n                        {}, {} (default: {default})\n",
                a.help, a.domain
            ));
        }
    }
    out.push_str(
        "    --trace-dir DIR     cache .retrace captures here (default: <out>/traces)
    --log-dir DIR       cache .relog render logs here (default: the trace
                        directory); a warm cache lets resumed/sharded runs
                        skip Stage A rasterization entirely
    --no-log-cache      never read or write .relog render-log artifacts
    --import-dir DIR    directory of imported traces to register as
                        `trace:<alias>` scene values before the grid is
                        parsed (default: <out>/imports; see IMPORT)
    --relog-compress on|off
                        write .relog artifacts LZSS-compressed (RELOG002;
                        default: off). Replay reads both framings, so the
                        flag can change between runs of one cache
    --no-group          render per cell instead of once per render key
    --metrics PATH      dump the process metrics registry (counters and
                        duration histograms) as versioned JSON on exit
    --no-events         do not write the events.jsonl run log beside the
                        store (written by default on store runs)
    --quiet             no per-cell progress on stderr
    -h, --help          this text

Axis LIST values are comma-separated; `all` expands to the axis default
(every workload for --scenes). Duplicate values are rejected.

REPORT:
    sweep report [--store DIR]
                        per-scene comparison table plus per-axis marginal
                        mean/median RE speedup tables from an existing
                        store (default store: sweep-out)

PROFILE:
    sweep profile [--store DIR]
                        stage breakdowns, replay-cache hit rates and
                        per-scene/per-render-key/per-worker hotspots from
                        a store's events.jsonl run log (default store:
                        sweep-out)

MERGE:
    sweep merge <out> <in>...
                        fingerprint-check and union per-shard stores into
                        one store at <out>; its results.csv is
                        byte-identical to an unsharded run of the grid

IMPORT:
    sweep import <file.retrace> [--as ALIAS] [--import-dir DIR]
                        validate an external capture (bare .retrace or a
                        RETRIMP1 checksummed envelope), canonicalize it
                        into the import directory and register it; the
                        trace then runs anywhere a built-in scene does:
                        `sweep --scenes trace:ALIAS ...` (docs/FORMATS.md
                        has the validation rules)

AXES:
    sweep axes [--import-dir DIR]
                        print every registered axis: flag, class, domain,
                        default (generated from the axis registry), plus
                        the imported traces visible in the import dir

SERVE:
    sweep serve [--addr HOST:PORT] [--root DIR] [--workers N] [--prefetch N]
                        long-running daemon: accepts grid submissions over
                        TCP, shares the artifact caches and in-flight
                        renders across jobs (docs/SERVING.md)
    sweep client --addr HOST:PORT <verb>
                        talk to a daemon; verbs: submit (takes run flags,
                        plus --wait), status/watch/report/csv (--job N),
                        metrics, ping, shutdown

FLEET:
    sweep fleet [RUN FLAGS] --local-procs N [--daemon HOST:PORT]...
                        run a sharded sweep end to end: partition the grid
                        by render key across N local worker processes plus
                        one shard per --daemon, supervise them (heartbeat
                        liveness, bounded retry of dead shards), then merge
                        the shard stores into <out>/merged — byte-identical
                        to the unsharded run (docs/FLEET.md)
    --max-retries N     relaunches allowed per shard beyond the first
                        attempt (default 2; stores resume, so retry is safe)
    --stall-timeout-ms N
                        a shard whose run log grows nothing for this long
                        is killed and retried (default 30000)
    --poll-ms N         supervisor poll cadence (default 200)
    --dry-run           print the shard partition and exit
",
    );
    out
}

/// The `sweep axes` table: one line per registered axis, straight from the
/// registry (living documentation of the parameter space).
pub fn render_axes_table() -> String {
    let mut out = format!(
        "{:<20} {:<22} {:<7} {:<9} {:<22} {}\n",
        "axis", "flag", "class", "default", "domain", "description"
    );
    for a in &AXES {
        let class = match a.class {
            AxisClass::Render => "render",
            AxisClass::Eval => "eval",
        };
        let default = if a.default_all {
            "all".to_string()
        } else {
            a.format_value(a.default)
        };
        let presence = match a.presence {
            Presence::Always => "",
            Presence::NonDefault => " [in artifacts only off-default]",
        };
        out.push_str(&format!(
            "{:<20} {:<22} {:<7} {:<9} {:<22} {}{}\n",
            a.name, a.flag, class, default, a.domain, a.help, presence
        ));
    }
    // Nothing is appended when no trace is registered: CI asserts the
    // bare table is exactly one line per AxisDef entry plus the header.
    let imported = re_workloads::source::imported();
    if !imported.is_empty() {
        out.push_str("\nimported traces (usable as --scenes values):\n");
        for (alias, path) in imported {
            out.push_str(&format!("    {alias:<28} {}\n", path.display()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<Command, String> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn run_args(args: &[&str]) -> RunArgs {
        match parse_strs(args).expect("parse") {
            Command::Run(r) => *r,
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn axis_flags_reach_the_grid_through_the_registry() {
        let r = run_args(&[
            "--scenes",
            "ccs,tib",
            "--tile-sizes",
            "8,16",
            "--refresh",
            "none,8",
            "--binning",
            "bbox,exact",
            "--memo-kb",
            "4,16",
            "--frames",
            "3",
        ]);
        assert_eq!(r.grid.scene_aliases(), ["ccs", "tib"]);
        assert_eq!(r.grid.axis_values(axis::TILE_SIZE), [8, 16]);
        assert_eq!(r.grid.axis_values(axis::REFRESH_PERIOD), [0, 8]);
        assert_eq!(r.grid.axis_values(axis::BINNING), [0, 1]);
        assert_eq!(r.grid.axis_values(axis::MEMO_KB), [4, 16]);
        assert_eq!(r.grid.frames, 3);
        assert!(r.store);
    }

    #[test]
    fn duplicate_axis_values_are_rejected() {
        let err = parse_strs(&["--tile-sizes", "16,16"]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = parse_strs(&["--scenes", "ccs,ccs"]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn unknown_flags_suggest_the_nearest_axis() {
        let err = parse_strs(&["--sig-bit", "16"]).unwrap_err();
        assert!(err.contains("did you mean `--sig-bits`?"), "{err}");
        let err = parse_strs(&["--memokb", "4"]).unwrap_err();
        assert!(err.contains("did you mean `--memo-kb`?"), "{err}");
        // A prefix of a real flag beats a closer-by-edit-distance flag.
        let err = parse_strs(&["--sig", "16"]).unwrap_err();
        assert!(err.contains("did you mean `--sig-bits`?"), "{err}");
        // Complete nonsense still errors, without a misleading suggestion.
        let err = parse_strs(&["--frobnicate-extremely", "1"]).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn domain_errors_carry_the_flag_and_domain() {
        let err = parse_strs(&["--sig-bits", "33"]).unwrap_err();
        assert!(
            err.contains("--sig-bits") && err.contains("1..=32"),
            "{err}"
        );
        let err = parse_strs(&["--scenes", "nope"]).unwrap_err();
        assert!(err.contains("unknown workload alias"), "{err}");
        let err = parse_strs(&["--frames", "0"]).unwrap_err();
        assert!(err.contains("at least one frame"), "{err}");
    }

    #[test]
    fn all_expands_scenes_to_the_suite() {
        let r = run_args(&["--scenes", "all"]);
        assert_eq!(r.grid.scene_aliases().len(), re_workloads::ALIASES.len());
    }

    #[test]
    fn store_and_trace_dir_defaults() {
        let r = run_args(&["--out", "results"]);
        assert!(r.store);
        assert_eq!(
            r.opts.trace_dir.as_deref(),
            Some(std::path::Path::new("results/traces"))
        );
        let r = run_args(&["--no-store"]);
        assert!(!r.store);
        assert_eq!(r.opts.trace_dir, None);
    }

    #[test]
    fn log_dir_defaults_to_the_trace_dir() {
        // Store run: both caches live under <out>/traces by default.
        let r = run_args(&["--out", "results"]);
        assert_eq!(
            r.opts.log_dir.as_deref(),
            Some(std::path::Path::new("results/traces"))
        );
        assert_eq!(r.opts.log_dir, r.opts.trace_dir);

        // Explicit --log-dir wins over the default.
        let r = run_args(&["--out", "results", "--log-dir", "logs"]);
        assert_eq!(
            r.opts.log_dir.as_deref(),
            Some(std::path::Path::new("logs"))
        );

        // A memory-only run has no default cache directory at all.
        let r = run_args(&["--no-store"]);
        assert_eq!(r.opts.log_dir, None);
        // ...but an explicit trace dir brings the log cache with it.
        let r = run_args(&["--no-store", "--trace-dir", "t"]);
        assert_eq!(r.opts.log_dir.as_deref(), Some(std::path::Path::new("t")));

        // --no-log-cache disables the .relog side everywhere.
        let r = run_args(&["--out", "results", "--no-log-cache"]);
        assert_eq!(r.opts.log_dir, None);
        assert!(r.opts.trace_dir.is_some(), "trace cache is untouched");
        let err = parse_strs(&["--no-log-cache", "--log-dir", "x"]).unwrap_err();
        assert!(err.contains("contradicts"), "{err}");
        let err = parse_strs(&["--log-drr", "x"]).unwrap_err();
        assert!(err.contains("did you mean `--log-dir`?"), "{err}");
    }

    #[test]
    fn parallel_render_and_compression_flags_parse() {
        let r = run_args(&[]);
        assert_eq!(r.opts.render_workers, 0, "default: match --workers");
        assert!(!r.opts.relog_compress, "compression is opt-in");
        let r = run_args(&["--render-workers", "4", "--relog-compress", "on"]);
        assert_eq!(r.opts.render_workers, 4);
        assert!(r.opts.relog_compress);
        let r = run_args(&["--relog-compress", "off"]);
        assert!(!r.opts.relog_compress);
        let err = parse_strs(&["--render-workers", "many"]).unwrap_err();
        assert!(err.contains("--render-workers"), "{err}");
        let err = parse_strs(&["--relog-compress", "yes"]).unwrap_err();
        assert!(err.contains("not `on` or `off`"), "{err}");
        let err = parse_strs(&["--render-worker", "2"]).unwrap_err();
        assert!(err.contains("did you mean `--render-workers`?"), "{err}");
    }

    #[test]
    fn heartbeat_flag_sets_cadence() {
        let r = run_args(&[]);
        assert_eq!(
            r.opts.heartbeat,
            Some(std::time::Duration::from_secs(10)),
            "default cadence"
        );
        let r = run_args(&["--heartbeat-ms", "250"]);
        assert_eq!(
            r.opts.heartbeat,
            Some(std::time::Duration::from_millis(250))
        );
        let r = run_args(&["--heartbeat-ms", "0"]);
        assert_eq!(r.opts.heartbeat, None, "0 disables the heartbeat");
        let err = parse_strs(&["--heartbeat-ms", "soon"]).unwrap_err();
        assert!(err.contains("--heartbeat-ms"), "{err}");
    }

    #[test]
    fn shard_flag_parses_and_validates() {
        let r = run_args(&["--shard", "1/2"]);
        assert_eq!(r.shard, Some(ShardSpec { index: 0, count: 2 }));
        let r = run_args(&["--out", "d"]);
        assert_eq!(r.shard, None);
        let err = parse_strs(&["--shard", "0/2"]).unwrap_err();
        assert!(err.contains("--shard") && err.contains("K/N"), "{err}");
        let err = parse_strs(&["--shard", "3/2"]).unwrap_err();
        assert!(err.contains("--shard"), "{err}");
        let err = parse_strs(&["--shards", "1/2"]).unwrap_err();
        assert!(err.contains("did you mean `--shard`?"), "{err}");
    }

    #[test]
    fn merge_subcommand_parses() {
        match parse_strs(&["merge", "out", "a", "b"]).unwrap() {
            Command::Merge { out, inputs } => {
                assert_eq!(out, PathBuf::from("out"));
                assert_eq!(inputs, vec![PathBuf::from("a"), PathBuf::from("b")]);
            }
            other => panic!("expected merge, got {other:?}"),
        }
        // One input is enough (a single complete store just round-trips).
        assert!(matches!(
            parse_strs(&["merge", "out", "a"]).unwrap(),
            Command::Merge { .. }
        ));
        let err = parse_strs(&["merge", "out"]).unwrap_err();
        assert!(err.contains("sweep merge <out> <in>..."), "{err}");
        let err = parse_strs(&["merge"]).unwrap_err();
        assert!(err.contains("sweep merge <out> <in>..."), "{err}");
        let err = parse_strs(&["merge", "--force", "a", "b"]).unwrap_err();
        assert!(err.contains("no flags"), "{err}");
        assert!(matches!(
            parse_strs(&["merge", "--help"]).unwrap(),
            Command::Help
        ));
    }

    #[test]
    fn profile_subcommand_and_observability_flags_parse() {
        match parse_strs(&["profile", "--store", "d"]).unwrap() {
            Command::Profile { store } => assert_eq!(store, PathBuf::from("d")),
            other => panic!("expected profile, got {other:?}"),
        }
        match parse_strs(&["profile"]).unwrap() {
            Command::Profile { store } => assert_eq!(store, PathBuf::from("sweep-out")),
            other => panic!("expected profile, got {other:?}"),
        }
        let err = parse_strs(&["profile", "--stroe", "d"]).unwrap_err();
        assert!(err.contains("did you mean `--store`?"), "{err}");

        let r = run_args(&["--metrics", "m.json"]);
        assert_eq!(r.metrics, Some(PathBuf::from("m.json")));
        assert!(r.events, "events.jsonl is on by default");
        let r = run_args(&["--no-events"]);
        assert_eq!(r.metrics, None);
        assert!(!r.events);
        let err = parse_strs(&["--metrics"]).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = parse_strs(&["--no-event"]).unwrap_err();
        assert!(err.contains("did you mean `--no-events`?"), "{err}");
    }

    #[test]
    fn report_and_axes_subcommands_parse() {
        assert!(matches!(
            parse_strs(&["report", "--store", "d"]).unwrap(),
            Command::Report { .. }
        ));
        assert!(matches!(parse_strs(&["axes"]).unwrap(), Command::Axes));
        assert!(parse_strs(&["axes", "typo"])
            .unwrap_err()
            .contains("only --import-dir/--out"));
        assert!(matches!(parse_strs(&["--help"]).unwrap(), Command::Help));
        let err = parse_strs(&["report", "--stroe", "d"]).unwrap_err();
        assert!(err.contains("did you mean `--store`?"), "{err}");
    }

    #[test]
    fn import_subcommand_parses() {
        match parse_strs(&[
            "import",
            "cap.retrace",
            "--as",
            "web",
            "--import-dir",
            "imp",
        ])
        .unwrap()
        {
            Command::Import { src, alias, dir } => {
                assert_eq!(src, PathBuf::from("cap.retrace"));
                assert_eq!(alias.as_deref(), Some("web"));
                assert_eq!(dir, PathBuf::from("imp"));
            }
            other => panic!("expected import, got {other:?}"),
        }
        // The import directory defaults to <out>/imports.
        match parse_strs(&["import", "cap.retrace", "--out", "results"]).unwrap() {
            Command::Import { alias, dir, .. } => {
                assert_eq!(alias, None);
                assert_eq!(dir, PathBuf::from("results/imports"));
            }
            other => panic!("expected import, got {other:?}"),
        }
        let err = parse_strs(&["import"]).unwrap_err();
        assert!(err.contains("sweep import <file.retrace>"), "{err}");
        let err = parse_strs(&["import", "a.retrace", "b.retrace"]).unwrap_err();
        assert!(err.contains("one source file"), "{err}");
        let err = parse_strs(&["import", "a.retrace", "--a"]).unwrap_err();
        assert!(err.contains("did you mean `--as`?"), "{err}");
        assert!(matches!(
            parse_strs(&["import", "--help"]).unwrap(),
            Command::Help
        ));
    }

    #[test]
    fn run_pre_pass_registers_imports_in_any_flag_order() {
        let dir = std::env::temp_dir().join(format!("re_cli_imp_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("cli-imp.retrace");
        let mut scene = re_workloads::source::builtin_scene("ccs").unwrap();
        re_trace::capture(
            &mut *scene,
            re_gpu::GpuConfig {
                width: 64,
                height: 48,
                tile_size: 16,
                ..Default::default()
            },
            2,
        )
        .save(&src)
        .unwrap();
        let imports = dir.join("imports");
        crate::importer::import_file(&src, None, &imports).expect("import");

        // `--scenes` before `--import-dir`: the pre-pass must still win.
        let r = run_args(&[
            "--scenes",
            "trace:cli-imp",
            "--import-dir",
            imports.to_str().unwrap(),
        ]);
        assert_eq!(r.grid.scene_aliases(), ["trace:cli-imp"]);
        assert_eq!(r.import_dir, imports);

        // Vector scenes need no registration at all.
        let r = run_args(&["--scenes", "vui,vdoc,vmap"]);
        assert_eq!(r.grid.scene_aliases(), ["vui", "vdoc", "vmap"]);

        // The axes table lists what got registered.
        let table = render_axes_table();
        assert!(table.contains("trace:cli-imp"), "{table}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn usage_and_axes_table_cover_every_registered_axis() {
        let (usage, table) = (usage(), render_axes_table());
        for a in &AXES {
            assert!(usage.contains(a.flag), "usage lacks {}", a.flag);
            assert!(table.contains(a.flag), "table lacks {}", a.flag);
            assert!(table.contains(a.name), "table lacks {}", a.name);
        }
        assert!(table.contains("memo_kb"));
    }
}
