//! Capture-once / replay-everywhere workload traces.
//!
//! Scene generators are `Box<dyn Scene>` and deliberately not `Send` — they
//! were never designed for threading. The sweep sidesteps that entirely:
//! each workload is captured **once** into a [`re_trace::Trace`] (a plain
//! `Send + Sync` value), optionally cached on disk as a `.retrace` file, and
//! every worker replays it through its own lightweight [`SharedTraceScene`]
//! that borrows the trace via `Arc` instead of cloning frames wholesale.
//!
//! Replay is bit-exact (see `re_trace`'s roundtrip tests), so a sweep over a
//! trace measures exactly what a serial run over the live generator would.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use re_core::Scene;
use re_gpu::api::FrameDesc;
use re_gpu::GpuConfig;
use re_trace::Trace;

/// A [`Scene`] replaying an `Arc`-shared trace; cheap to construct per cell.
///
/// Frame indices beyond the capture length wrap around, matching
/// [`re_trace::TraceScene`]'s replay semantics — the sweep engine always
/// captures exactly as many frames as it replays, so within the engine the
/// wrap never triggers.
#[derive(Debug, Clone)]
pub struct SharedTraceScene {
    trace: Arc<Trace>,
    name: String,
}

impl SharedTraceScene {
    /// Wraps `trace` for replay under `name` (used in reports).
    pub fn new(trace: Arc<Trace>, name: impl Into<String>) -> Self {
        SharedTraceScene {
            trace,
            name: name.into(),
        }
    }
}

impl Scene for SharedTraceScene {
    fn init(&mut self, textures: &mut re_gpu::texture::TextureStore) {
        for img in &self.trace.textures {
            let w = img.width;
            let texels = &img.texels;
            textures.upload_with(img.width, img.height, |x, y| texels[(y * w + x) as usize]);
        }
    }

    fn frame(&mut self, index: usize) -> FrameDesc {
        let n = self.trace.frames.len().max(1);
        self.trace.frames[index % n].clone()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Captures workloads once and hands out shared traces, with an optional
/// on-disk `.retrace` cache keyed by scene, frame count and capture screen.
#[derive(Debug)]
pub struct TraceCache {
    dir: Option<PathBuf>,
    loaded: HashMap<String, Arc<Trace>>,
}

impl TraceCache {
    /// A cache writing `.retrace` files under `dir` (`None` = memory only).
    pub fn new(dir: Option<PathBuf>) -> Self {
        TraceCache {
            dir,
            loaded: HashMap::new(),
        }
    }

    fn file_key(alias: &str, frames: usize, cfg: GpuConfig) -> String {
        format!("{alias}-{frames}f-{}x{}.retrace", cfg.width, cfg.height)
    }

    /// The trace of workload `alias` over `frames` frames: from memory, else
    /// from the disk cache, else captured live (and then cached).
    ///
    /// # Errors
    /// I/O errors from the disk cache, or an unknown alias (reported as
    /// [`io::ErrorKind::NotFound`]).
    pub fn get(&mut self, alias: &str, frames: usize, cfg: GpuConfig) -> io::Result<Arc<Trace>> {
        let key = Self::file_key(alias, frames, cfg);
        if let Some(t) = self.loaded.get(&key) {
            return Ok(Arc::clone(t));
        }
        if let Some(dir) = &self.dir {
            let path = dir.join(&key);
            if path.exists() {
                let t = Arc::new(Trace::load(&path)?);
                self.loaded.insert(key, Arc::clone(&t));
                return Ok(t);
            }
        }
        let t = Arc::new(capture_alias(alias, frames, cfg)?);
        if let Some(dir) = &self.dir {
            std::fs::create_dir_all(dir)?;
            // Write-then-rename so a killed sweep never leaves a torn
            // `.retrace` that a resumed run would trust.
            let tmp = dir.join(format!("{key}.tmp"));
            t.save(&tmp)?;
            std::fs::rename(&tmp, dir.join(&key))?;
        }
        self.loaded.insert(key, Arc::clone(&t));
        Ok(t)
    }
}

/// Captures `frames` frames of the suite workload `alias` under `cfg`.
///
/// # Errors
/// [`io::ErrorKind::NotFound`] if `alias` is not in the suite.
pub fn capture_alias(alias: &str, frames: usize, cfg: GpuConfig) -> io::Result<Trace> {
    let mut bench = re_workloads::by_alias(alias).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("unknown workload alias `{alias}`"),
        )
    })?;
    Ok(re_trace::capture(bench.scene.as_mut(), cfg, frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_core::{SimOptions, Simulator};

    fn cfg() -> GpuConfig {
        GpuConfig {
            width: 128,
            height: 64,
            tile_size: 16,
            ..Default::default()
        }
    }

    #[test]
    fn shared_replay_matches_live_run() {
        let trace = Arc::new(capture_alias("ccs", 4, cfg()).expect("capture"));
        let mut replay = SharedTraceScene::new(Arc::clone(&trace), "ccs");
        let mut live = re_workloads::by_alias("ccs").unwrap();

        let opts = SimOptions {
            gpu: cfg(),
            ..SimOptions::default()
        };
        let a = Simulator::new(opts).run(&mut replay, 4);
        let b = Simulator::new(opts).run(live.scene.as_mut(), 4);
        assert_eq!(a.baseline.total_cycles(), b.baseline.total_cycles());
        assert_eq!(a.re.tiles_skipped, b.re.tiles_skipped);
        assert_eq!(a.false_positives, b.false_positives);
        assert_eq!(a.name, "ccs");
    }

    #[test]
    fn disk_cache_round_trips_and_is_reused() {
        let dir = std::env::temp_dir().join(format!("re_sweep_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = TraceCache::new(Some(dir.clone()));
        let first = cache.get("tib", 3, cfg()).expect("capture");
        assert!(dir.join("tib-3f-128x64.retrace").exists());

        // A fresh cache object must hit the file, not re-capture.
        let mut cache2 = TraceCache::new(Some(dir.clone()));
        let second = cache2.get("tib", 3, cfg()).expect("load");
        assert_eq!(*first, *second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_alias_is_not_found() {
        let mut cache = TraceCache::new(None);
        let err = cache.get("nope", 2, cfg()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
