//! Explicit sweep job graphs: what a sweep *is*, separate from how it runs.
//!
//! [`SweepPlan::compile`] turns an [`ExperimentGrid`] into typed work
//! units:
//!
//! * one [`RenderJob`] per distinct [`RenderKey`] — the Stage A unit; its
//!   output (a `re_core::RenderLog`) is consumed by every cell of the key;
//! * one [`EvalJob`] per grid cell — the Stage B unit, holding the cell
//!   and the index of the render job it depends on.
//!
//! The plan is the seam every execution strategy plugs into: the
//! work-stealing [`crate::exec::ThreadExecutor`] runs it in-process, a
//! future async executor can overlap its jobs, and **sharding** partitions
//! it across machines. [`SweepPlan::shard`] splits the plan *by render
//! key* — never by cell — so each shard still rasterizes each of its keys
//! exactly once, and the union of all shards is exactly the original plan
//! ([disjoint, total, cells co-resident with their key][`SweepPlan::shard`]).
//! [`SweepPlan::without_cells`] is the same mechanism applied to resume:
//! completed cells drop out and render jobs whose cells are all done
//! disappear with them.
//!
//! Everything here is a pure function of the grid: job order, ids and the
//! shard partition are deterministic, so two machines compiling the same
//! grid agree on every shard's contents without communicating.

use std::collections::HashSet;

use crate::grid::{Cell, ExperimentGrid, RenderKey};

/// Which shard of a plan this is: shard `index` of `count` (zero-based).
///
/// The CLI form (`--shard 1/2`, [`ShardSpec::parse`]/[`Display`]) is
/// one-based — "shard 1 of 2" — while the API index is zero-based.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index (`0..count`).
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// Parses the one-based CLI form `K/N` (e.g. `1/2` is the first of two
    /// shards).
    ///
    /// # Errors
    /// A ready-to-print message for anything but `K/N` with
    /// `1 <= K <= N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let bad = || format!("expected K/N with 1 <= K <= N, e.g. `1/2` (got `{s}`)");
        let (k, n) = s.split_once('/').ok_or_else(bad)?;
        let k: usize = k.trim().parse().map_err(|_| bad())?;
        let n: usize = n.trim().parse().map_err(|_| bad())?;
        if k == 0 || n == 0 || k > n {
            return Err(bad());
        }
        Ok(ShardSpec {
            index: k - 1,
            count: n,
        })
    }
}

impl std::fmt::Display for ShardSpec {
    /// The one-based CLI/store form (`1/2`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

/// The Stage A unit: rasterize one render key once.
///
/// Identified by its position in [`SweepPlan::render_jobs`]; positions are
/// assigned in first-cell order, so they are stable for a given plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderJob {
    /// The render key this job rasterizes.
    pub key: RenderKey,
    /// Ids of the cells evaluating this job's log, ascending.
    pub cells: Vec<usize>,
    /// Path of a validated cached `.relog` covering this key, set by
    /// [`SweepPlan::attach_cached_logs`]. When present the job is
    /// **satisfied**: executors replay the artifact instead of
    /// rasterizing, so the job costs zero raster invocations.
    pub cached_log: Option<std::path::PathBuf>,
}

impl RenderJob {
    /// Whether a validated cached log already satisfies this job.
    pub fn is_satisfied(&self) -> bool {
        self.cached_log.is_some()
    }
}

/// The Stage B unit: evaluate one cell against its render job's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalJob {
    /// The grid cell to evaluate.
    pub cell: Cell,
    /// Index of the cell's render job in [`SweepPlan::render_jobs`].
    pub render_job: usize,
}

/// The compiled job graph of one sweep (or one shard of it).
///
/// Carries everything an [`crate::exec::Executor`] or a store needs that
/// would otherwise require the grid: the fingerprint and spec string
/// (store identity), screen/frame scalars (trace capture), and the full
/// grid's cell count (id-range validation) — so a shard can be shipped,
/// executed and persisted without the grid in hand.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    fingerprint: u64,
    spec: String,
    total_cells: usize,
    frames: usize,
    width: u32,
    height: u32,
    render_jobs: Vec<RenderJob>,
    eval_jobs: Vec<EvalJob>,
    shard: Option<ShardSpec>,
}

impl SweepPlan {
    /// Compiles `grid` into its job graph: render jobs in first-cell
    /// order, eval jobs in cell-id order.
    ///
    /// # Panics
    /// Panics if the grid has no frames (same contract as
    /// [`ExperimentGrid::cells`]).
    pub fn compile(grid: &ExperimentGrid) -> SweepPlan {
        let cells = grid.cells();
        let mut index = std::collections::HashMap::new();
        let mut render_jobs: Vec<RenderJob> = Vec::new();
        let mut eval_jobs = Vec::with_capacity(cells.len());
        for cell in cells {
            let key = cell.render_key();
            let job = *index.entry(key).or_insert_with(|| {
                render_jobs.push(RenderJob {
                    key,
                    cells: Vec::new(),
                    cached_log: None,
                });
                render_jobs.len() - 1
            });
            render_jobs[job].cells.push(cell.id);
            eval_jobs.push(EvalJob {
                cell,
                render_job: job,
            });
        }
        SweepPlan {
            fingerprint: grid.fingerprint(),
            spec: grid.spec_string(),
            total_cells: eval_jobs.len(),
            frames: grid.frames,
            width: grid.width,
            height: grid.height,
            render_jobs,
            eval_jobs,
            shard: None,
        }
    }

    /// Shard `index` of `count`, partitioned **by render key**: render job
    /// `j` goes to shard `j % count`, and every cell travels with its key.
    ///
    /// The partition is exact: the `count` shards' render jobs are
    /// pairwise disjoint, their union is the full plan, and each key's
    /// cells are co-resident with it — so each machine still rasterizes
    /// each of its keys exactly once, and merging the shards' stores
    /// reproduces the unsharded sweep byte for byte. A shard may be empty
    /// when `count` exceeds the number of render keys.
    ///
    /// # Errors
    /// `count == 0`, `index >= count`, or sharding an already-sharded
    /// plan (shard the original plan with a finer `count` instead).
    pub fn shard(&self, index: usize, count: usize) -> Result<SweepPlan, String> {
        if let Some(s) = self.shard {
            return Err(format!(
                "plan is already shard {s}; shard the unsharded plan instead"
            ));
        }
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        let keep: HashSet<usize> = (index..self.render_jobs.len()).step_by(count).collect();
        let eval = self
            .eval_jobs
            .iter()
            .filter(|j| keep.contains(&j.render_job))
            .copied()
            .collect();
        Ok(self.rebuilt(eval, Some(ShardSpec { index, count })))
    }

    /// The plan minus the cells in `done` (resume): their eval jobs drop
    /// out, and render jobs whose cells are all done disappear with them.
    pub fn without_cells(&self, done: &HashSet<usize>) -> SweepPlan {
        let eval = self
            .eval_jobs
            .iter()
            .filter(|j| !done.contains(&j.cell.id))
            .copied()
            .collect();
        self.rebuilt(eval, self.shard)
    }

    /// Rebuilds a plan around a filtered eval-job list: render jobs are
    /// re-derived (original relative order, per-job cell lists recomputed)
    /// and eval jobs re-pointed at the new positions.
    fn rebuilt(&self, eval: Vec<EvalJob>, shard: Option<ShardSpec>) -> SweepPlan {
        let mut map: Vec<Option<usize>> = vec![None; self.render_jobs.len()];
        let mut render_jobs: Vec<RenderJob> = Vec::new();
        let mut eval_jobs = Vec::with_capacity(eval.len());
        for job in eval {
            let new = match map[job.render_job] {
                Some(n) => n,
                None => {
                    render_jobs.push(RenderJob {
                        key: self.render_jobs[job.render_job].key,
                        cells: Vec::new(),
                        cached_log: self.render_jobs[job.render_job].cached_log.clone(),
                    });
                    map[job.render_job] = Some(render_jobs.len() - 1);
                    render_jobs.len() - 1
                }
            };
            render_jobs[new].cells.push(job.cell.id);
            eval_jobs.push(EvalJob {
                cell: job.cell,
                render_job: new,
            });
        }
        SweepPlan {
            fingerprint: self.fingerprint,
            spec: self.spec.clone(),
            total_cells: self.total_cells,
            frames: self.frames,
            width: self.width,
            height: self.height,
            render_jobs,
            eval_jobs,
            shard,
        }
    }

    /// Marks every render job a validated cached `.relog` covers as
    /// satisfied (its [`RenderJob::cached_log`] is set to the artifact's
    /// path) and returns how many jobs that matched. Jobs the cache misses
    /// — including corrupt or stale artifacts, which `lookup` rejects and
    /// removes — are left to render normally.
    ///
    /// Resume composes with this naturally: [`Self::without_cells`] first
    /// drops completed cells, then the cached logs satisfy the remaining
    /// keys, so a fully warm resume performs zero raster invocations.
    pub fn attach_cached_logs(&mut self, cache: &crate::artifacts::RenderLogCache) -> usize {
        let mut satisfied = 0;
        for job in &mut self.render_jobs {
            job.cached_log = cache.lookup(&job.key);
            satisfied += usize::from(job.cached_log.is_some());
        }
        satisfied
    }

    /// Number of render jobs already satisfied by a cached log.
    pub fn satisfied_render_jobs(&self) -> usize {
        self.render_jobs.iter().filter(|j| j.is_satisfied()).count()
    }

    /// The Stage A jobs, in first-cell order.
    pub fn render_jobs(&self) -> &[RenderJob] {
        &self.render_jobs
    }

    /// The Stage B jobs, in cell-id order.
    pub fn eval_jobs(&self) -> &[EvalJob] {
        &self.eval_jobs
    }

    /// Number of render jobs (distinct render keys) in this plan.
    pub fn render_job_count(&self) -> usize {
        self.render_jobs.len()
    }

    /// Number of cells (eval jobs) in this plan.
    pub fn cell_count(&self) -> usize {
        self.eval_jobs.len()
    }

    /// Cell count of the **full** grid the plan was compiled from — the id
    /// space shards and stores share (a shard's own cell count is
    /// [`cell_count`](Self::cell_count)).
    pub fn total_cells(&self) -> usize {
        self.total_cells
    }

    /// Mean cells per render key — the fan-out factor render-once grouping
    /// exploits (0 for an empty plan).
    pub fn cells_per_key(&self) -> f64 {
        if self.render_jobs.is_empty() {
            0.0
        } else {
            self.eval_jobs.len() as f64 / self.render_jobs.len() as f64
        }
    }

    /// The grid fingerprint ([`ExperimentGrid::fingerprint`]) — shared by
    /// every shard of a plan, which is what makes cross-machine merges
    /// checkable.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The grid's canonical spec string ([`ExperimentGrid::spec_string`]).
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Which shard this plan is, if any.
    pub fn shard_spec(&self) -> Option<ShardSpec> {
        self.shard
    }

    /// Frames per cell (trace capture needs it).
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Screen width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Screen height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Distinct workload aliases of this plan's cells, in first-use order
    /// (the scenes a runner must capture traces for).
    pub fn scene_aliases(&self) -> Vec<&'static str> {
        let mut seen = HashSet::new();
        self.eval_jobs
            .iter()
            .map(|j| j.cell.scene())
            .filter(|s| seen.insert(*s))
            .collect()
    }

    /// Distinct aliases of render jobs a cached log does **not** satisfy,
    /// in job order — the only scenes a grouped execution still needs
    /// traces for (a fully satisfied plan needs none, which is what makes
    /// a warm-cache resume capture- and raster-free).
    pub fn pending_scene_aliases(&self) -> Vec<&'static str> {
        let mut seen = HashSet::new();
        self.render_jobs
            .iter()
            .filter(|j| !j.is_satisfied())
            .map(|j| j.key.scene())
            .filter(|s| seen.insert(*s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis;

    fn grid() -> ExperimentGrid {
        let mut g = ExperimentGrid::default()
            .with_scenes(&["ccs", "tib"])
            .with_axis(axis::TILE_SIZE, vec![8, 16])
            .with_axis(axis::SIG_BITS, vec![16, 32])
            .with_axis(axis::COMPARE_DISTANCE, vec![1, 2]);
        g.frames = 2;
        g.width = 128;
        g.height = 64;
        g
    }

    #[test]
    fn compile_builds_one_render_job_per_key() {
        let plan = SweepPlan::compile(&grid());
        // 2 scenes × 2 tile sizes render-side; sig bits × distance eval-side.
        assert_eq!(plan.render_job_count(), 4);
        assert_eq!(plan.cell_count(), 16);
        assert_eq!(plan.total_cells(), 16);
        assert_eq!(plan.cells_per_key(), 4.0);
        assert_eq!(plan.scene_aliases(), ["ccs", "tib"]);
        assert_eq!(plan.fingerprint(), grid().fingerprint());
        // Eval jobs are in cell-id order and point at their key's job.
        for (i, job) in plan.eval_jobs().iter().enumerate() {
            assert_eq!(job.cell.id, i);
            assert_eq!(
                plan.render_jobs()[job.render_job].key,
                job.cell.render_key()
            );
            assert!(plan.render_jobs()[job.render_job].cells.contains(&i));
        }
        // Render-job cell lists are ascending and total 16.
        let mut seen = 0;
        for rj in plan.render_jobs() {
            assert!(rj.cells.windows(2).all(|w| w[0] < w[1]));
            seen += rj.cells.len();
        }
        assert_eq!(seen, 16);
    }

    #[test]
    fn shards_partition_render_keys_exactly() {
        let plan = SweepPlan::compile(&grid());
        for n in 1..=6 {
            let mut seen_cells = HashSet::new();
            let mut seen_keys = HashSet::new();
            for k in 0..n {
                let shard = plan.shard(k, n).expect("shard");
                assert_eq!(shard.shard_spec(), Some(ShardSpec { index: k, count: n }));
                assert_eq!(shard.total_cells(), plan.total_cells());
                assert_eq!(shard.fingerprint(), plan.fingerprint());
                for rj in shard.render_jobs() {
                    assert!(seen_keys.insert(rj.key), "key in two shards");
                    // Co-residency: the shard holds every cell of its keys.
                    let full = plan
                        .render_jobs()
                        .iter()
                        .find(|f| f.key == rj.key)
                        .expect("key exists in full plan");
                    assert_eq!(rj.cells, full.cells);
                }
                for ej in shard.eval_jobs() {
                    assert!(seen_cells.insert(ej.cell.id), "cell in two shards");
                }
            }
            assert_eq!(seen_cells.len(), plan.cell_count(), "n={n}");
            assert_eq!(seen_keys.len(), plan.render_job_count(), "n={n}");
        }
    }

    #[test]
    fn shard_validation() {
        let plan = SweepPlan::compile(&grid());
        assert!(plan.shard(0, 0).is_err());
        assert!(plan.shard(2, 2).is_err());
        let shard = plan.shard(0, 2).unwrap();
        let err = shard.shard(0, 2).unwrap_err();
        assert!(err.contains("already shard 1/2"), "{err}");
    }

    #[test]
    fn oversharded_plans_have_empty_tails() {
        let plan = SweepPlan::compile(&grid());
        let empty = plan.shard(5, 6).expect("shard");
        assert_eq!(empty.cell_count(), 0);
        assert_eq!(empty.render_job_count(), 0);
        assert_eq!(empty.cells_per_key(), 0.0);
        assert!(empty.scene_aliases().is_empty());
    }

    #[test]
    fn without_cells_drops_jobs_and_empty_keys() {
        let plan = SweepPlan::compile(&grid());
        // Finish every cell of the first render job plus one more cell.
        let mut done: HashSet<usize> = plan.render_jobs()[0].cells.iter().copied().collect();
        let extra = plan.render_jobs()[1].cells[0];
        done.insert(extra);
        let rest = plan.without_cells(&done);
        assert_eq!(rest.cell_count(), plan.cell_count() - done.len());
        assert_eq!(rest.render_job_count(), plan.render_job_count() - 1);
        assert_eq!(rest.total_cells(), plan.total_cells());
        for job in rest.eval_jobs() {
            assert!(!done.contains(&job.cell.id));
            assert_eq!(
                rest.render_jobs()[job.render_job].key,
                job.cell.render_key()
            );
        }
        // Resuming nothing is the identity.
        assert_eq!(plan.without_cells(&HashSet::new()), plan);
    }

    #[test]
    fn shard_spec_parses_the_cli_form() {
        assert_eq!(
            ShardSpec::parse("1/2"),
            Ok(ShardSpec { index: 0, count: 2 })
        );
        assert_eq!(
            ShardSpec::parse("3/3"),
            Ok(ShardSpec { index: 2, count: 3 })
        );
        assert_eq!(ShardSpec { index: 0, count: 2 }.to_string(), "1/2");
        for bad in ["0/2", "3/2", "1", "a/b", "1/0", "", "1/2/3"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad}");
        }
    }
}
