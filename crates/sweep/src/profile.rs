//! Post-hoc profiling of a sweep from its `events.jsonl` run log.
//!
//! [`Profile::from_events`] folds a parsed event stream (all segments of
//! a possibly killed-and-resumed, possibly sharded run) into stage
//! totals, cache-hit accounting, and per-scene / per-render-key /
//! per-worker hotspots; [`Profile::render`] is the text report behind
//! `sweep profile`. Everything here reads the on-disk log only — no live
//! process state — so a store directory can be profiled long after the
//! run, on another machine.

use std::collections::BTreeMap;

use crate::events::EventRecord;

/// Aggregated timing and cache statistics for one run log.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Profile {
    /// Run segments in the log (1 = never resumed).
    pub segments: u64,
    /// Workload captures performed (trace-cache misses).
    pub captures: u64,
    /// Total capture time in nanoseconds.
    pub capture_ns: u64,
    /// Stage A renders performed (`.relog` cache misses).
    pub renders: u64,
    /// Total Stage A render time in nanoseconds.
    pub render_ns: u64,
    /// Render jobs satisfied by streaming a cached `.relog`.
    pub replays: u64,
    /// Cells evaluated (Stage B executions recorded in the log).
    pub cells: u64,
    /// Of those, cells whose Stage B streamed a cached `.relog`.
    pub replayed_cells: u64,
    /// Total Stage B time in nanoseconds (includes `.relog` streaming).
    pub eval_ns: u64,
    /// Total store-commit time in nanoseconds.
    pub store_ns: u64,
    /// Wall clock in nanoseconds, summed over segments (per segment: the
    /// largest `elapsed` any progress/cell event reported).
    pub wall_ns: u64,
    /// Per-scene busy time, hottest first.
    pub scenes: Vec<SceneProfile>,
    /// Per-render-key Stage A accounting, hottest first.
    pub render_keys: Vec<RenderKeyProfile>,
    /// Per-worker busy time, by worker id.
    pub workers: Vec<WorkerProfile>,
}

/// Busy time attributed to one workload alias.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SceneProfile {
    /// Workload alias.
    pub scene: String,
    /// Cells evaluated for this scene.
    pub cells: u64,
    /// Stage B time in nanoseconds.
    pub eval_ns: u64,
    /// Stage A time in nanoseconds.
    pub render_ns: u64,
}

/// Stage A accounting for one render key (scene × tile size).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RenderKeyProfile {
    /// Workload alias.
    pub scene: String,
    /// Tile edge in pixels.
    pub tile_size: u64,
    /// Times this key was rendered live.
    pub renders: u64,
    /// Times this key was replayed from a cached `.relog`.
    pub replays: u64,
    /// Live render time in nanoseconds.
    pub render_ns: u64,
    /// Frame chunks recorded by parallel Stage A renders of this key
    /// (0 when every render ran serially — serial renders emit no
    /// `render_chunk` events).
    pub chunks: u64,
    /// Total busy time across those chunks, in nanoseconds.
    pub chunk_busy_ns: u64,
}

impl RenderKeyProfile {
    /// Parallel efficiency of this key's frame-parallel renders, as a
    /// percentage: chunk busy time over (mean chunk fan-out × wall render
    /// time). 100% means the chunk threads were busy for the render's
    /// whole duration; lower values mean stragglers or stitch overhead.
    /// `None` when no render of this key was chunked.
    pub fn parallel_efficiency_pct(&self) -> Option<f64> {
        if self.chunks == 0 || self.renders == 0 || self.render_ns == 0 {
            return None;
        }
        let mean_fanout = self.chunks as f64 / self.renders as f64;
        Some(self.chunk_busy_ns as f64 * 100.0 / (mean_fanout * self.render_ns as f64))
    }
}

/// Busy time attributed to one worker thread.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker index within its executor.
    pub worker: u64,
    /// Cells this worker evaluated.
    pub cells: u64,
    /// Render jobs this worker executed (live or replay).
    pub renders: u64,
    /// Total attributed busy time in nanoseconds.
    pub busy_ns: u64,
}

impl Profile {
    /// Folds a parsed event stream into a profile. Unknown records and
    /// event kinds without timing content are skipped, so logs written by
    /// newer builds still profile.
    pub fn from_events(events: &[EventRecord]) -> Profile {
        let mut p = Profile::default();
        let mut scenes: BTreeMap<String, SceneProfile> = BTreeMap::new();
        let mut keys: BTreeMap<(String, u64), RenderKeyProfile> = BTreeMap::new();
        let mut workers: BTreeMap<u64, WorkerProfile> = BTreeMap::new();
        let mut segment_wall = 0u64;
        for event in events {
            match event {
                EventRecord::RunStart { .. } => {
                    p.segments += 1;
                    p.wall_ns += segment_wall;
                    segment_wall = 0;
                }
                EventRecord::CaptureDone { duration_ns, .. } => {
                    p.captures += 1;
                    p.capture_ns += duration_ns;
                }
                EventRecord::RenderDone {
                    scene,
                    tile_size,
                    worker,
                    duration_ns,
                    ..
                } => {
                    p.renders += 1;
                    p.render_ns += duration_ns;
                    let s = scenes.entry(scene.clone()).or_default();
                    s.render_ns += duration_ns;
                    let k = keys.entry((scene.clone(), *tile_size)).or_default();
                    k.renders += 1;
                    k.render_ns += duration_ns;
                    let w = workers.entry(*worker).or_default();
                    w.renders += 1;
                    w.busy_ns += duration_ns;
                }
                EventRecord::RenderChunk {
                    scene,
                    tile_size,
                    duration_ns,
                    ..
                } => {
                    let k = keys.entry((scene.clone(), *tile_size)).or_default();
                    k.chunks += 1;
                    k.chunk_busy_ns += duration_ns;
                }
                EventRecord::Replay {
                    scene,
                    tile_size,
                    worker,
                    ..
                } => {
                    p.replays += 1;
                    keys.entry((scene.clone(), *tile_size)).or_default().replays += 1;
                    workers.entry(*worker).or_default().renders += 1;
                }
                EventRecord::EvalDone {
                    scene,
                    worker,
                    replayed,
                    eval_ns,
                    store_ns,
                    ..
                } => {
                    p.cells += 1;
                    p.replayed_cells += u64::from(*replayed);
                    p.eval_ns += eval_ns;
                    p.store_ns += store_ns;
                    let s = scenes.entry(scene.clone()).or_default();
                    s.cells += 1;
                    s.eval_ns += eval_ns;
                    let w = workers.entry(*worker).or_default();
                    w.cells += 1;
                    w.busy_ns += eval_ns + store_ns;
                }
                EventRecord::CellDone { elapsed_ns, .. }
                | EventRecord::Progress { elapsed_ns, .. } => {
                    segment_wall = segment_wall.max(*elapsed_ns);
                }
                _ => {}
            }
        }
        p.wall_ns += segment_wall;
        p.scenes = scenes
            .into_iter()
            .map(|(scene, s)| SceneProfile { scene, ..s })
            .collect();
        p.scenes
            .sort_by_key(|s| std::cmp::Reverse(s.eval_ns + s.render_ns));
        p.render_keys = keys
            .into_iter()
            .map(|((scene, tile_size), k)| RenderKeyProfile {
                scene,
                tile_size,
                ..k
            })
            .collect();
        p.render_keys
            .sort_by_key(|k| std::cmp::Reverse(k.render_ns));
        p.workers = workers
            .into_iter()
            .map(|(worker, w)| WorkerProfile { worker, ..w })
            .collect();
        p
    }

    /// Fraction of render jobs served from the `.relog` cache, as a
    /// percentage. `None` when the log contains no render jobs.
    pub fn replay_hit_pct(&self) -> Option<f64> {
        let jobs = self.renders + self.replays;
        (jobs > 0).then(|| self.replays as f64 * 100.0 / jobs as f64)
    }

    /// The text report printed by `sweep profile`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run log: {} segment{}, {} cell{}, {} render job{}",
            self.segments,
            plural(self.segments),
            self.cells,
            plural(self.cells),
            self.renders + self.replays,
            plural(self.renders + self.replays),
        );
        let _ = writeln!(out, "wall clock (across segments): {}", secs(self.wall_ns));
        out.push('\n');
        let _ = writeln!(out, "stage breakdown (busy time, all workers):");
        for (name, total, count) in [
            ("capture", self.capture_ns, self.captures),
            ("render (stage A)", self.render_ns, self.renders),
            ("eval (stage B)", self.eval_ns, self.cells),
            ("store write", self.store_ns, self.cells),
        ] {
            let _ = writeln!(out, "  {name:<18} {:>10}  x{count}", secs(total));
        }
        out.push('\n');
        match self.replay_hit_pct() {
            Some(pct) => {
                let _ = writeln!(
                    out,
                    "render cache: {} replayed, {} rendered ({pct:.1}% replay hits)",
                    self.replays, self.renders
                );
            }
            None => {
                let _ = writeln!(out, "render cache: no render jobs in log");
            }
        }
        if !self.scenes.is_empty() {
            out.push('\n');
            let _ = writeln!(out, "scene hotspots:");
            for s in &self.scenes {
                let _ = writeln!(
                    out,
                    "  {:<12} {:>10} eval  {:>10} render  ({} cells)",
                    s.scene,
                    secs(s.eval_ns),
                    secs(s.render_ns),
                    s.cells
                );
            }
        }
        if !self.render_keys.is_empty() {
            out.push('\n');
            let _ = writeln!(out, "render keys:");
            for k in &self.render_keys {
                let par = match k.parallel_efficiency_pct() {
                    Some(pct) => format!(", {} chunks, {pct:.0}% par-eff", k.chunks),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "  {:<12} ts{:<5} {:>10} render  ({} rendered, {} replayed{par})",
                    k.scene,
                    k.tile_size,
                    secs(k.render_ns),
                    k.renders,
                    k.replays
                );
            }
        }
        if !self.workers.is_empty() {
            out.push('\n');
            let _ = writeln!(out, "workers:");
            for w in &self.workers {
                let _ = writeln!(
                    out,
                    "  w{:<3} {:>10} busy  ({} cells, {} render jobs)",
                    w.worker,
                    secs(w.busy_ns),
                    w.cells,
                    w.renders
                );
            }
        }
        out
    }
}

fn plural(n: u64) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn secs(ns: u64) -> String {
    format!("{:.3}s", ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(scene: &str, worker: u64, replayed: bool, eval_ns: u64) -> EventRecord {
        EventRecord::EvalDone {
            t_ms: 0,
            cell: 0,
            scene: scene.into(),
            worker,
            replayed,
            eval_ns,
            store_ns: 10,
        }
    }

    #[test]
    fn folds_stages_hotspots_and_cache_hits() {
        let events = vec![
            EventRecord::RunStart {
                t_ms: 0,
                version: 1,
                epoch_ms: 0,
                shard: None,
            },
            EventRecord::CaptureDone {
                t_ms: 1,
                scene: "ccs".into(),
                frames: 3,
                duration_ns: 1000,
            },
            EventRecord::RenderDone {
                t_ms: 2,
                scene: "ccs".into(),
                tile_size: 16,
                worker: 0,
                frames: 3,
                duration_ns: 500,
            },
            EventRecord::Replay {
                t_ms: 3,
                scene: "ccs".into(),
                tile_size: 32,
                worker: 1,
            },
            eval("ccs", 0, false, 200),
            eval("ccs", 1, true, 100),
            EventRecord::Progress {
                t_ms: 4,
                done: 2,
                total: 2,
                elapsed_ns: 9000,
                cells_per_sec: 1.0,
                eta_ns: Some(0),
            },
        ];
        let p = Profile::from_events(&events);
        assert_eq!(p.segments, 1);
        assert_eq!((p.captures, p.capture_ns), (1, 1000));
        assert_eq!((p.renders, p.render_ns), (1, 500));
        assert_eq!(p.replays, 1);
        assert_eq!((p.cells, p.replayed_cells), (2, 1));
        assert_eq!((p.eval_ns, p.store_ns), (300, 20));
        assert_eq!(p.wall_ns, 9000);
        assert_eq!(p.replay_hit_pct(), Some(50.0));
        assert_eq!(p.scenes.len(), 1);
        assert_eq!(p.scenes[0].cells, 2);
        assert_eq!(p.render_keys.len(), 2);
        // Hottest key first: the live render beats the free replay.
        assert_eq!(p.render_keys[0].tile_size, 16);
        assert_eq!(p.workers.len(), 2);
        assert_eq!(p.workers[0].busy_ns, 500 + 200 + 10);
    }

    #[test]
    fn parallel_renders_report_chunks_and_efficiency() {
        let chunk = |chunk, duration_ns| EventRecord::RenderChunk {
            t_ms: 0,
            scene: "ccs".into(),
            tile_size: 16,
            worker: 0,
            chunk,
            chunks: 2,
            frames: 2,
            duration_ns,
        };
        let events = vec![
            chunk(0, 400),
            chunk(1, 300),
            EventRecord::RenderDone {
                t_ms: 1,
                scene: "ccs".into(),
                tile_size: 16,
                worker: 0,
                frames: 4,
                duration_ns: 500,
            },
        ];
        let p = Profile::from_events(&events);
        let k = &p.render_keys[0];
        assert_eq!((k.chunks, k.chunk_busy_ns), (2, 700));
        // 700 ns busy over 2 chunks × 500 ns wall = 70%.
        let eff = k.parallel_efficiency_pct().expect("chunked render");
        assert!((eff - 70.0).abs() < 1e-9, "{eff}");
        let text = p.render();
        assert!(text.contains("2 chunks, 70% par-eff"), "{text}");
        // Serial keys stay unchanged.
        let serial = RenderKeyProfile {
            renders: 1,
            render_ns: 500,
            ..RenderKeyProfile::default()
        };
        assert_eq!(serial.parallel_efficiency_pct(), None);
    }

    #[test]
    fn wall_clock_sums_across_segments() {
        let seg = |elapsed_ns| {
            vec![
                EventRecord::RunStart {
                    t_ms: 0,
                    version: 1,
                    epoch_ms: 0,
                    shard: None,
                },
                EventRecord::Progress {
                    t_ms: 1,
                    done: 1,
                    total: 1,
                    elapsed_ns,
                    cells_per_sec: 1.0,
                    eta_ns: None,
                },
            ]
        };
        let mut events = seg(5000);
        events.extend(seg(3000));
        let p = Profile::from_events(&events);
        assert_eq!(p.segments, 2);
        assert_eq!(p.wall_ns, 8000);
    }

    #[test]
    fn warm_run_reports_full_replay_hits_and_zero_render_time() {
        let events = vec![
            EventRecord::RunStart {
                t_ms: 0,
                version: 1,
                epoch_ms: 0,
                shard: None,
            },
            EventRecord::Replay {
                t_ms: 1,
                scene: "ccs".into(),
                tile_size: 16,
                worker: 0,
            },
            eval("ccs", 0, true, 100),
        ];
        let p = Profile::from_events(&events);
        assert_eq!(p.render_ns, 0);
        assert_eq!(p.renders, 0);
        assert_eq!(p.replay_hit_pct(), Some(100.0));
        let text = p.render();
        assert!(text.contains("100.0% replay hits"), "{text}");
        assert!(text.contains("render (stage A)"), "{text}");
    }

    #[test]
    fn empty_log_renders_without_panicking() {
        let p = Profile::from_events(&[]);
        assert_eq!(p.replay_hit_pct(), None);
        let text = p.render();
        assert!(text.contains("no render jobs"), "{text}");
    }
}
