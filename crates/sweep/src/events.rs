//! The machine-readable run log: [`JsonlObserver`] serializes every
//! [`SweepEvent`] as one JSON line of an append-only, versioned
//! `events.jsonl` beside the store, and [`EventRecord`]/[`read_events`]
//! parse the stream back — the exact format `sweep profile` digests and
//! the future `sweep serve` daemon / fleet driver will tail.
//!
//! Format (full schema in `docs/FORMATS.md`):
//!
//! * one JSON object per line, each with a `"type"` tag and a `"t_ms"`
//!   monotonic timestamp (milliseconds since this observer — i.e. this
//!   process's run segment — started);
//! * every run segment starts with a `run_start` line carrying the
//!   format version ([`EVENTS_VERSION`]), a wall-clock `epoch_ms`, and
//!   the shard identity when sharded. A resumed store run *appends* a new
//!   segment, so one file can hold several; a segment that shut down
//!   cleanly (normal exit, graceful signal, daemon drain) ends with a
//!   `run_end` trailer ([`JsonlObserver::finish`]) naming the reason —
//!   its absence marks a segment that was killed mid-run;
//! * durations are integer nanoseconds (`*_ns`), so lines round-trip
//!   exactly through any JSON parser;
//! * consumers must skip unknown `"type"`s ([`EventRecord::Unknown`]) —
//!   that is what lets the format grow without breaking old tools.
//!
//! # Concurrent writers
//!
//! Overlapping runs may share one `events.jsonl` (daemon jobs writing to
//! a common store directory, or a resume racing a straggler). The file is
//! safe for that: every writer opens it `O_APPEND` and emits each record
//! as a **single** `write_all` of one `\n`-terminated line, which Linux
//! applies atomically at the file's end for regular files — lines from
//! two writers interleave but never splice into each other. Segments are
//! then reconstructed by `run_start`/`run_end` markers, not byte ranges.
//! The one artifact a crash *can* leave is a torn final line (a writer
//! killed mid-`write`), which [`read_events`] tolerates: an unparsable
//! line is an error only when the file continues past it.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::exec::{SweepEvent, SweepObserver};
use crate::json::Json;
use crate::plan::ShardSpec;

/// File name of the run log inside a store directory.
pub const EVENTS_FILE: &str = "events.jsonl";

/// Format version written in every `run_start` line.
pub const EVENTS_VERSION: u64 = 1;

/// Writes every event as one JSON line to an append-only `events.jsonl`.
///
/// Lines are written under a mutex (workers emit concurrently) and
/// flushed individually, so a tailing consumer never sees a torn line
/// and a killed run keeps everything emitted so far.
pub struct JsonlObserver {
    file: Mutex<std::fs::File>,
    path: PathBuf,
    start: Instant,
}

impl std::fmt::Debug for JsonlObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlObserver")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl JsonlObserver {
    /// Opens (creating or appending to) `path` and writes this segment's
    /// `run_start` line. `shard` is the run's shard identity, if any.
    ///
    /// # Errors
    /// File creation/write errors.
    pub fn append(path: impl Into<PathBuf>, shard: Option<ShardSpec>) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let observer = JsonlObserver {
            file: Mutex::new(file),
            path,
            start: Instant::now(),
        };
        let epoch_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let mut pairs = vec![
            ("type".to_string(), Json::Str("run_start".into())),
            ("v".to_string(), Json::Int(EVENTS_VERSION as i64)),
            ("t_ms".to_string(), Json::Int(0)),
            ("epoch_ms".to_string(), Json::Int(epoch_ms as i64)),
        ];
        if let Some(s) = shard {
            pairs.push(("shard".to_string(), Json::Str(s.to_string())));
        }
        observer.write_line(&Json::Obj(pairs))?;
        Ok(observer)
    }

    /// The file this observer writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes this segment's `run_end` trailer: the marker that the run
    /// shut down cleanly (as opposed to being killed mid-write). `reason`
    /// is free-form — the CLI writes `"complete"` on normal exit and
    /// `"signal"` from the SIGINT/SIGTERM path; the daemon writes
    /// `"drain"` on graceful shutdown.
    ///
    /// # Errors
    /// File write errors.
    pub fn finish(&self, reason: &str) -> io::Result<()> {
        self.finish_with_rasters(reason, None)
    }

    /// [`finish`](Self::finish) with the segment's raster-invocation
    /// count attached to the trailer. A fleet supervisor tailing several
    /// shard logs sums these to report the fleet-wide raster total — the
    /// number the `.relog` cache drives to zero on a warm run.
    ///
    /// # Errors
    /// File write errors.
    pub fn finish_with_rasters(&self, reason: &str, rasters: Option<u64>) -> io::Result<()> {
        let t_ms = self.start.elapsed().as_millis() as u64;
        let mut fields = vec![
            ("type".to_string(), Json::Str("run_end".into())),
            ("t_ms".to_string(), Json::Int(t_ms as i64)),
            ("reason".to_string(), Json::Str(reason.into())),
        ];
        if let Some(n) = rasters {
            fields.push(("rasters".to_string(), Json::Int(n as i64)));
        }
        self.write_line(&Json::Obj(fields))
    }

    fn write_line(&self, json: &Json) -> io::Result<()> {
        let mut line = json.to_string();
        line.push('\n');
        let mut file = self.file.lock().expect("events file poisoned");
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

impl SweepObserver for JsonlObserver {
    fn on_event(&self, event: &SweepEvent<'_>) {
        let t_ms = self.start.elapsed().as_millis() as u64;
        // Observability must never kill the sweep: a full disk costs the
        // run log, not the run.
        let _ = self.write_line(&event_json(event, t_ms));
    }
}

fn ns(d: Duration) -> Json {
    Json::Int(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX) as i64)
}

/// Serializes one event as its `events.jsonl` object.
pub fn event_json(event: &SweepEvent<'_>, t_ms: u64) -> Json {
    let mut pairs: Vec<(String, Json)> = Vec::with_capacity(8);
    let mut push = |k: &str, v: Json| pairs.push((k.to_string(), v));
    match *event {
        SweepEvent::CaptureStart { scene, frames } => {
            push("type", Json::Str("capture_start".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("scene", Json::Str(scene.into()));
            push("frames", Json::Int(frames as i64));
        }
        SweepEvent::CaptureDone {
            scene,
            frames,
            duration,
        } => {
            push("type", Json::Str("capture_done".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("scene", Json::Str(scene.into()));
            push("frames", Json::Int(frames as i64));
            push("duration_ns", ns(duration));
        }
        SweepEvent::GroupStart {
            cells,
            render_jobs,
            workers,
            shard,
        } => {
            push("type", Json::Str("group_start".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("cells", Json::Int(cells as i64));
            push("render_jobs", Json::Int(render_jobs as i64));
            push("workers", Json::Int(workers as i64));
            if let Some(s) = shard {
                push("shard", Json::Str(s.to_string()));
            }
        }
        SweepEvent::RenderStart {
            scene,
            tile_size,
            worker,
        } => {
            push("type", Json::Str("render_start".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("scene", Json::Str(scene.into()));
            push("tile_size", Json::Int(tile_size as i64));
            push("worker", Json::Int(worker as i64));
        }
        SweepEvent::RenderDone {
            scene,
            tile_size,
            worker,
            frames,
            duration,
        } => {
            push("type", Json::Str("render_done".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("scene", Json::Str(scene.into()));
            push("tile_size", Json::Int(tile_size as i64));
            push("worker", Json::Int(worker as i64));
            push("frames", Json::Int(frames as i64));
            push("duration_ns", ns(duration));
        }
        SweepEvent::RenderChunkDone {
            scene,
            tile_size,
            worker,
            chunk,
            chunks,
            frames,
            duration,
        } => {
            push("type", Json::Str("render_chunk".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("scene", Json::Str(scene.into()));
            push("tile_size", Json::Int(tile_size as i64));
            push("worker", Json::Int(worker as i64));
            push("chunk", Json::Int(chunk as i64));
            push("chunks", Json::Int(chunks as i64));
            push("frames", Json::Int(frames as i64));
            push("duration_ns", ns(duration));
        }
        SweepEvent::RenderLogReplay {
            scene,
            tile_size,
            worker,
        } => {
            push("type", Json::Str("replay".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("scene", Json::Str(scene.into()));
            push("tile_size", Json::Int(tile_size as i64));
            push("worker", Json::Int(worker as i64));
        }
        SweepEvent::RenderLogSaved {
            scene,
            tile_size,
            bytes,
        } => {
            push("type", Json::Str("log_saved".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("scene", Json::Str(scene.into()));
            push("tile_size", Json::Int(tile_size as i64));
            push("bytes", Json::Int(bytes as i64));
        }
        SweepEvent::EvalDone {
            cell,
            scene,
            worker,
            replayed,
            eval,
            store,
        } => {
            push("type", Json::Str("eval_done".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("cell", Json::Int(cell as i64));
            push("scene", Json::Str(scene.into()));
            push("worker", Json::Int(worker as i64));
            push("replayed", Json::Bool(replayed));
            push("eval_ns", ns(eval));
            push("store_ns", ns(store));
        }
        SweepEvent::CellDone {
            done,
            total,
            label,
            cells_per_sec,
            elapsed,
            eta,
        } => {
            push("type", Json::Str("cell_done".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("done", Json::Int(done as i64));
            push("total", Json::Int(total as i64));
            push("label", Json::Str(label.into()));
            push("cells_per_sec", Json::Float(cells_per_sec));
            push("elapsed_ns", ns(elapsed));
            if let Some(eta) = eta {
                push("eta_ns", ns(eta));
            }
        }
        SweepEvent::Progress {
            done,
            total,
            elapsed,
            cells_per_sec,
            eta,
        } => {
            push("type", Json::Str("progress".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("done", Json::Int(done as i64));
            push("total", Json::Int(total as i64));
            push("elapsed_ns", ns(elapsed));
            push("cells_per_sec", Json::Float(cells_per_sec));
            if let Some(eta) = eta {
                push("eta_ns", ns(eta));
            }
        }
        SweepEvent::StoreResume { resumed, pending } => {
            push("type", Json::Str("store_resume".into()));
            push("t_ms", Json::Int(t_ms as i64));
            push("resumed", Json::Int(resumed as i64));
            push("pending", Json::Int(pending as i64));
        }
    }
    Json::Obj(pairs)
}

/// One parsed `events.jsonl` line — the owned mirror of [`SweepEvent`]
/// plus the per-segment `run_start` header. Every variant carries its
/// `t_ms` monotonic timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum EventRecord {
    /// A run segment started.
    RunStart {
        /// Timestamp (always 0 for a segment header).
        t_ms: u64,
        /// Format version of the segment.
        version: u64,
        /// Wall-clock start in ms since the Unix epoch.
        epoch_ms: u64,
        /// Shard identity (`"k/n"`), when the segment ran a shard.
        shard: Option<String>,
    },
    /// A run segment ended cleanly (see [`JsonlObserver::finish`]). A
    /// segment without one was killed mid-run.
    RunEnd {
        /// Timestamp.
        t_ms: u64,
        /// Why the segment ended (`"complete"`, `"signal"`, `"drain"`, …).
        reason: String,
        /// Raster invocations this segment performed, when the writer
        /// recorded them ([`JsonlObserver::finish_with_rasters`]).
        rasters: Option<u64>,
    },
    /// Mirror of [`SweepEvent::CaptureStart`].
    CaptureStart {
        /// Timestamp.
        t_ms: u64,
        /// Workload alias.
        scene: String,
        /// Frames captured.
        frames: u64,
    },
    /// Mirror of [`SweepEvent::CaptureDone`].
    CaptureDone {
        /// Timestamp.
        t_ms: u64,
        /// Workload alias.
        scene: String,
        /// Frames captured.
        frames: u64,
        /// Capture duration in nanoseconds.
        duration_ns: u64,
    },
    /// Mirror of [`SweepEvent::GroupStart`].
    GroupStart {
        /// Timestamp.
        t_ms: u64,
        /// Eval jobs in the execution.
        cells: u64,
        /// Render jobs in the execution.
        render_jobs: u64,
        /// Worker threads.
        workers: u64,
        /// Shard identity (`"k/n"`), when sharded.
        shard: Option<String>,
    },
    /// Mirror of [`SweepEvent::RenderStart`].
    RenderStart {
        /// Timestamp.
        t_ms: u64,
        /// Workload alias of the render key.
        scene: String,
        /// Tile edge of the render key.
        tile_size: u64,
        /// Worker running the render.
        worker: u64,
    },
    /// Mirror of [`SweepEvent::RenderDone`].
    RenderDone {
        /// Timestamp.
        t_ms: u64,
        /// Workload alias of the render key.
        scene: String,
        /// Tile edge of the render key.
        tile_size: u64,
        /// Worker that rendered.
        worker: u64,
        /// Frames rendered.
        frames: u64,
        /// Stage A duration in nanoseconds.
        duration_ns: u64,
    },
    /// Mirror of [`SweepEvent::RenderChunkDone`].
    RenderChunk {
        /// Timestamp.
        t_ms: u64,
        /// Workload alias of the render key.
        scene: String,
        /// Tile edge of the render key.
        tile_size: u64,
        /// Worker that owned the render job.
        worker: u64,
        /// Chunk index (0-based, frame order).
        chunk: u64,
        /// Chunks the render was split into.
        chunks: u64,
        /// Frames this chunk rendered.
        frames: u64,
        /// The chunk's render duration in nanoseconds.
        duration_ns: u64,
    },
    /// Mirror of [`SweepEvent::RenderLogReplay`].
    Replay {
        /// Timestamp.
        t_ms: u64,
        /// Workload alias of the render key.
        scene: String,
        /// Tile edge of the render key.
        tile_size: u64,
        /// Worker that reached the job first.
        worker: u64,
    },
    /// Mirror of [`SweepEvent::RenderLogSaved`].
    LogSaved {
        /// Timestamp.
        t_ms: u64,
        /// Workload alias of the render key.
        scene: String,
        /// Tile edge of the render key.
        tile_size: u64,
        /// Artifact size on disk.
        bytes: u64,
    },
    /// Mirror of [`SweepEvent::EvalDone`].
    EvalDone {
        /// Timestamp.
        t_ms: u64,
        /// The cell's stable id.
        cell: u64,
        /// The cell's workload alias.
        scene: String,
        /// Worker that evaluated.
        worker: u64,
        /// Whether Stage B streamed a cached `.relog`.
        replayed: bool,
        /// Evaluation duration in nanoseconds.
        eval_ns: u64,
        /// Store-commit duration in nanoseconds.
        store_ns: u64,
    },
    /// Mirror of [`SweepEvent::CellDone`].
    CellDone {
        /// Timestamp.
        t_ms: u64,
        /// Cells finished so far.
        done: u64,
        /// Cells in the execution.
        total: u64,
        /// The cell's label.
        label: String,
        /// Mean completion rate.
        cells_per_sec: f64,
        /// Time since the execution started, in nanoseconds.
        elapsed_ns: u64,
        /// Windowed ETA in nanoseconds, when available.
        eta_ns: Option<u64>,
    },
    /// Mirror of [`SweepEvent::Progress`].
    Progress {
        /// Timestamp.
        t_ms: u64,
        /// Cells finished so far.
        done: u64,
        /// Cells in the execution.
        total: u64,
        /// Time since the execution started, in nanoseconds.
        elapsed_ns: u64,
        /// Mean completion rate.
        cells_per_sec: f64,
        /// Windowed ETA in nanoseconds, when available.
        eta_ns: Option<u64>,
    },
    /// Mirror of [`SweepEvent::StoreResume`].
    StoreResume {
        /// Timestamp.
        t_ms: u64,
        /// Cells already in the store.
        resumed: u64,
        /// Cells left to run.
        pending: u64,
    },
    /// A line with an unrecognized `"type"` — kept, not an error, so old
    /// tools survive new event kinds.
    Unknown {
        /// Timestamp (0 when absent).
        t_ms: u64,
        /// The unrecognized type tag.
        kind: String,
    },
}

impl EventRecord {
    /// Parses one `events.jsonl` object.
    ///
    /// # Errors
    /// A description of the missing/mistyped field. Unknown `"type"`s are
    /// *not* errors (see [`EventRecord::Unknown`]).
    pub fn from_json(v: &Json) -> Result<EventRecord, String> {
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing `type`")?;
        let t_ms = v.get("t_ms").and_then(Json::as_u64).unwrap_or(0);
        let num = |k: &str| -> Result<u64, String> { field(v, k)?.as_u64().ok_or(bad(kind, k)) };
        let text = |k: &str| -> Result<String, String> {
            Ok(field(v, k)?.as_str().ok_or(bad(kind, k))?.to_string())
        };
        let float = |k: &str| -> Result<f64, String> { field(v, k)?.as_f64().ok_or(bad(kind, k)) };
        let opt_num = |k: &str| v.get(k).and_then(Json::as_u64);
        let opt_text = |k: &str| v.get(k).and_then(Json::as_str).map(str::to_string);
        Ok(match kind {
            "run_start" => EventRecord::RunStart {
                t_ms,
                version: num("v")?,
                epoch_ms: num("epoch_ms")?,
                shard: opt_text("shard"),
            },
            "run_end" => EventRecord::RunEnd {
                t_ms,
                reason: text("reason")?,
                rasters: opt_num("rasters"),
            },
            "capture_start" => EventRecord::CaptureStart {
                t_ms,
                scene: text("scene")?,
                frames: num("frames")?,
            },
            "capture_done" => EventRecord::CaptureDone {
                t_ms,
                scene: text("scene")?,
                frames: num("frames")?,
                duration_ns: num("duration_ns")?,
            },
            "group_start" => EventRecord::GroupStart {
                t_ms,
                cells: num("cells")?,
                render_jobs: num("render_jobs")?,
                workers: num("workers")?,
                shard: opt_text("shard"),
            },
            "render_start" => EventRecord::RenderStart {
                t_ms,
                scene: text("scene")?,
                tile_size: num("tile_size")?,
                worker: num("worker")?,
            },
            "render_done" => EventRecord::RenderDone {
                t_ms,
                scene: text("scene")?,
                tile_size: num("tile_size")?,
                worker: num("worker")?,
                frames: num("frames")?,
                duration_ns: num("duration_ns")?,
            },
            "render_chunk" => EventRecord::RenderChunk {
                t_ms,
                scene: text("scene")?,
                tile_size: num("tile_size")?,
                worker: num("worker")?,
                chunk: num("chunk")?,
                chunks: num("chunks")?,
                frames: num("frames")?,
                duration_ns: num("duration_ns")?,
            },
            "replay" => EventRecord::Replay {
                t_ms,
                scene: text("scene")?,
                tile_size: num("tile_size")?,
                worker: num("worker")?,
            },
            "log_saved" => EventRecord::LogSaved {
                t_ms,
                scene: text("scene")?,
                tile_size: num("tile_size")?,
                bytes: num("bytes")?,
            },
            "eval_done" => EventRecord::EvalDone {
                t_ms,
                cell: num("cell")?,
                scene: text("scene")?,
                worker: num("worker")?,
                replayed: matches!(field(v, "replayed")?, Json::Bool(true)),
                eval_ns: num("eval_ns")?,
                store_ns: num("store_ns")?,
            },
            "cell_done" => EventRecord::CellDone {
                t_ms,
                done: num("done")?,
                total: num("total")?,
                label: text("label")?,
                cells_per_sec: float("cells_per_sec")?,
                elapsed_ns: num("elapsed_ns")?,
                eta_ns: opt_num("eta_ns"),
            },
            "progress" => EventRecord::Progress {
                t_ms,
                done: num("done")?,
                total: num("total")?,
                elapsed_ns: num("elapsed_ns")?,
                cells_per_sec: float("cells_per_sec")?,
                eta_ns: opt_num("eta_ns"),
            },
            "store_resume" => EventRecord::StoreResume {
                t_ms,
                resumed: num("resumed")?,
                pending: num("pending")?,
            },
            other => EventRecord::Unknown {
                t_ms,
                kind: other.to_string(),
            },
        })
    }
}

fn field<'a>(v: &'a Json, k: &str) -> Result<&'a Json, String> {
    v.get(k).ok_or_else(|| format!("missing `{k}`"))
}

fn bad(kind: &str, k: &str) -> String {
    format!("{kind}: field `{k}` has the wrong type")
}

/// Reads and parses a complete `events.jsonl` (all segments, in file
/// order). Empty lines are skipped; anything else must parse — with one
/// exception: an unparsable **final** line of a file that does not end in
/// `\n` is a torn tail (a writer was killed mid-`write`) and is silently
/// dropped. A newline-terminated bad line was written whole and is still
/// an error.
///
/// # Errors
/// I/O errors, or a parse error naming the offending line number.
pub fn read_events(path: impl AsRef<Path>) -> io::Result<Vec<EventRecord>> {
    let text = std::fs::read_to_string(path.as_ref())?;
    let torn_tail = !text.is_empty() && !text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(line).and_then(|v| EventRecord::from_json(&v));
        match parsed {
            Ok(record) => out.push(record),
            Err(_) if torn_tail && i + 1 == lines.len() => {}
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: {e}", path.as_ref().display(), i + 1),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("re_events_{}_{name}", std::process::id()))
    }

    #[test]
    fn every_event_kind_round_trips() {
        let d = Duration::from_micros(1500);
        let events = [
            SweepEvent::CaptureStart {
                scene: "ccs",
                frames: 3,
            },
            SweepEvent::CaptureDone {
                scene: "ccs",
                frames: 3,
                duration: d,
            },
            SweepEvent::GroupStart {
                cells: 8,
                render_jobs: 2,
                workers: 4,
                shard: Some(ShardSpec { index: 0, count: 2 }),
            },
            SweepEvent::RenderStart {
                scene: "ccs",
                tile_size: 16,
                worker: 1,
            },
            SweepEvent::RenderDone {
                scene: "ccs",
                tile_size: 16,
                worker: 1,
                frames: 3,
                duration: d,
            },
            SweepEvent::RenderChunkDone {
                scene: "ccs",
                tile_size: 16,
                worker: 1,
                chunk: 0,
                chunks: 4,
                frames: 1,
                duration: d,
            },
            SweepEvent::RenderLogReplay {
                scene: "ccs",
                tile_size: 16,
                worker: 0,
            },
            SweepEvent::RenderLogSaved {
                scene: "ccs",
                tile_size: 16,
                bytes: 4096,
            },
            SweepEvent::EvalDone {
                cell: 5,
                scene: "ccs",
                worker: 2,
                replayed: true,
                eval: d,
                store: Duration::from_nanos(300),
            },
            SweepEvent::CellDone {
                done: 3,
                total: 8,
                label: "ccs ts16",
                cells_per_sec: 1.5,
                elapsed: d,
                eta: Some(Duration::from_secs(2)),
            },
            SweepEvent::CellDone {
                done: 1,
                total: 8,
                label: "no eta yet",
                cells_per_sec: 0.0,
                elapsed: d,
                eta: None,
            },
            SweepEvent::Progress {
                done: 3,
                total: 8,
                elapsed: d,
                cells_per_sec: 1.5,
                eta: None,
            },
            SweepEvent::StoreResume {
                resumed: 4,
                pending: 4,
            },
        ];
        for event in &events {
            let json = event_json(event, 42);
            let parsed = Json::parse(&json.to_string()).expect("line parses");
            let record = EventRecord::from_json(&parsed).expect("record parses");
            assert!(
                !matches!(record, EventRecord::Unknown { .. }),
                "{event:?} must parse as a known record"
            );
        }
        // Spot-check one payload end to end.
        let json = event_json(&events[8], 9);
        let rec = EventRecord::from_json(&Json::parse(&json.to_string()).unwrap()).unwrap();
        assert_eq!(
            rec,
            EventRecord::EvalDone {
                t_ms: 9,
                cell: 5,
                scene: "ccs".into(),
                worker: 2,
                replayed: true,
                eval_ns: 1_500_000,
                store_ns: 300,
            }
        );
    }

    #[test]
    fn observer_writes_parsable_segments_and_appends() {
        let path = tmp("segments");
        let _ = std::fs::remove_file(&path);
        {
            let obs = JsonlObserver::append(&path, None).expect("open");
            obs.on_event(&SweepEvent::StoreResume {
                resumed: 0,
                pending: 2,
            });
        }
        {
            let obs =
                JsonlObserver::append(&path, Some(ShardSpec { index: 1, count: 3 })).expect("open");
            obs.on_event(&SweepEvent::CaptureStart {
                scene: "tib",
                frames: 2,
            });
        }
        let records = read_events(&path).expect("read");
        assert_eq!(records.len(), 4);
        assert!(matches!(
            records[0],
            EventRecord::RunStart {
                version: EVENTS_VERSION,
                shard: None,
                ..
            }
        ));
        assert!(matches!(
            &records[2],
            EventRecord::RunStart {
                shard: Some(s),
                ..
            } if s == "2/3"
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_types_are_kept_not_fatal() {
        let path = tmp("unknown");
        std::fs::write(&path, "{\"type\":\"from_the_future\",\"t_ms\":7}\n").unwrap();
        let records = read_events(&path).expect("read");
        assert_eq!(
            records,
            vec![EventRecord::Unknown {
                t_ms: 7,
                kind: "from_the_future".into()
            }]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_lines_are_reported_with_their_number() {
        let path = tmp("torn");
        std::fs::write(&path, "{\"type\":\"progress\",\"done\":1,\n{oops\n").unwrap();
        let err = read_events(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(":1:"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_end_trailer_round_trips() {
        let path = tmp("run_end");
        let _ = std::fs::remove_file(&path);
        let obs = JsonlObserver::append(&path, None).expect("open");
        obs.finish("signal").expect("trailer");
        obs.finish_with_rasters("complete", Some(7))
            .expect("trailer");
        let records = read_events(&path).expect("read");
        assert_eq!(records.len(), 3);
        assert!(
            matches!(
                &records[1],
                EventRecord::RunEnd { reason, rasters: None, .. } if reason == "signal"
            ),
            "{records:?}"
        );
        assert!(
            matches!(
                &records[2],
                EventRecord::RunEnd { reason, rasters: Some(7), .. } if reason == "complete"
            ),
            "{records:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_without_newline_is_dropped_not_fatal() {
        let path = tmp("torn_tail");
        // A writer killed mid-write leaves a half line with no trailing
        // newline; everything before it must still parse.
        std::fs::write(
            &path,
            "{\"type\":\"progress\",\"done\":1,\"total\":2,\"elapsed_ns\":5,\
             \"cells_per_sec\":0.5}\n{\"type\":\"eval_do",
        )
        .unwrap();
        let records = read_events(&path).expect("torn tail tolerated");
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0], EventRecord::Progress { .. }));
        // The same garbage *with* a newline was written whole: still fatal.
        std::fs::write(&path, "{\"type\":\"eval_do\n").unwrap();
        assert!(read_events(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn two_concurrent_writers_interleave_without_splicing() {
        let path = tmp("two_writers");
        let _ = std::fs::remove_file(&path);
        // Two observers appending to one file from separate threads — the
        // daemon's overlapping-jobs-one-store shape. Every line must still
        // parse (O_APPEND + single-write lines never splice) and both
        // segment headers and trailers must land.
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let path = &path;
                scope.spawn(move || {
                    let obs = JsonlObserver::append(path, None).expect("open");
                    for i in 0..50 {
                        obs.on_event(&SweepEvent::EvalDone {
                            cell: (t * 1000 + i) as usize,
                            scene: "ccs",
                            worker: t as usize,
                            replayed: false,
                            eval: Duration::from_micros(i),
                            store: Duration::from_nanos(1),
                        });
                    }
                    obs.finish("complete").expect("trailer");
                });
            }
        });
        let records = read_events(&path).expect("all lines parse");
        assert_eq!(records.len(), 2 + 100 + 2);
        let starts = records
            .iter()
            .filter(|r| matches!(r, EventRecord::RunStart { .. }))
            .count();
        let ends = records
            .iter()
            .filter(|r| matches!(r, EventRecord::RunEnd { .. }))
            .count();
        assert_eq!((starts, ends), (2, 2));
        // Each writer's 50 cells all arrived intact.
        for t in 0..2u64 {
            let cells = records
                .iter()
                .filter(|r| matches!(r, EventRecord::EvalDone { cell, .. } if cell / 1000 == t))
                .count();
            assert_eq!(cells, 50, "writer {t}");
        }
        let _ = std::fs::remove_file(&path);
    }
}
