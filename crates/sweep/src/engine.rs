//! The sweep engine: compile a grid into a [`SweepPlan`], capture traces,
//! hand the plan to an [`Executor`], aggregate results.
//!
//! Execution model:
//!
//! 1. the grid is compiled into an explicit job graph ([`crate::plan`]):
//!    one render job per [`RenderKey`], one eval job per cell;
//! 2. every distinct scene of the plan is captured **once** into a trace
//!    (from the disk cache when available) — scene generators never cross a
//!    thread boundary;
//! 3. the default [`ThreadExecutor`] fans the jobs out over the
//!    work-stealing pool. With render grouping (the default), the first
//!    worker to reach a render job runs Stage A and every cell of the job
//!    runs only Stage B against the shared `Arc<RenderLog>`, so a sweep
//!    over evaluation-only axes rasterizes each key **exactly once**;
//! 4. results are re-assembled in cell-id order, so every aggregate —
//!    returned reports, store records, the final CSV — is independent of
//!    worker count, scheduling, grouping and sharding.
//!
//! [`run_grid`] and [`run_grid_with_store`] are thin wrappers (compile +
//! default executor) kept for the bench harness, the ablation studies and
//! every pre-plan caller; new callers that need to partition, observe or
//! re-execute work should compile a plan and drive it directly.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use re_core::render::RenderLog;
use re_core::{render_scene, RunReport, Simulator};
use re_trace::Trace;

use crate::artifacts::{SharedTraceScene, TraceCache};
use crate::exec::ThreadExecutor;
use crate::exec::{Executor, NullObserver, StderrObserver, SweepEvent, SweepObserver};
use crate::grid::{Cell, ExperimentGrid, RenderKey};
use crate::plan::SweepPlan;
use crate::store::{CellRecord, ResultStore};

/// How a sweep executes (as opposed to *what* it runs, which is the grid —
/// or, compiled, the [`SweepPlan`]).
#[derive(Clone)]
pub struct SweepOptions {
    /// Worker threads; 0 means one per available hardware thread (or the
    /// `RE_SWEEP_WORKERS` override — see [`crate::pool::default_workers`]).
    pub workers: usize,
    /// Directory for cached `.retrace` captures (`None` = capture in memory
    /// each run).
    pub trace_dir: Option<PathBuf>,
    /// Directory for cached `.relog` Stage A artifacts (`None` = no render
    /// log cache). With a warm cache every covered render key is replayed
    /// from disk instead of rasterized — a resumed or re-executed sweep
    /// performs zero raster invocations for those keys. The CLI defaults
    /// this to the trace directory, so both artifact kinds live side by
    /// side.
    pub log_dir: Option<PathBuf>,
    /// Suppress the default stderr progress lines. Only consulted when
    /// [`observer`](Self::observer) is `None`.
    pub quiet: bool,
    /// Render each [`RenderKey`] once and share the log across its cells
    /// (the default). Disable to rebuild Stage A per cell — only useful for
    /// baselining and for equivalence tests.
    pub group_renders: bool,
    /// Worker threads a single Stage A render may spread its frames over
    /// (chunked rendering + deterministic stitch — output is bit-identical
    /// to a serial render at any setting; see [`render_key_log_parallel`]).
    /// 0 means match the executor's worker count; 1 forces serial Stage A.
    /// The executor divides this budget among concurrently running
    /// renders, so a single-key plan uses every worker while a many-key
    /// plan still parallelizes across keys first.
    pub render_workers: usize,
    /// Write `.relog` cache artifacts LZSS-compressed (`RELOG002`).
    /// Smaller files, identical replay results; readers accept both
    /// framings, so flipping this between runs is safe.
    pub relog_compress: bool,
    /// Interval of the [`SweepEvent::Progress`](crate::exec::SweepEvent)
    /// heartbeat the default executor's watchdog emits (`None` disables
    /// it). Supervisors that tail `events.jsonl` for liveness — the
    /// `sweep fleet` driver — tighten this below the 10-second default so
    /// a stuck worker is detected promptly.
    pub heartbeat: Option<std::time::Duration>,
    /// Progress-event sink. `None` installs [`StderrObserver`] (or
    /// [`NullObserver`] when [`quiet`](Self::quiet) is set); `Some`
    /// overrides both.
    pub observer: Option<Arc<dyn SweepObserver>>,
    /// Executor override. `None` (the default) builds a
    /// [`ThreadExecutor`] from the fields above; `Some` runs the plan
    /// through the given executor instead — how the `sweep serve` daemon
    /// installs its [`AsyncExecutor`](crate::exec::AsyncExecutor) with a
    /// shared in-flight render registry. An override is used as-is: the
    /// worker/grouping fields above do not reconfigure it.
    pub executor: Option<Arc<dyn Executor + Send + Sync>>,
}

impl std::fmt::Debug for SweepOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepOptions")
            .field("workers", &self.workers)
            .field("trace_dir", &self.trace_dir)
            .field("log_dir", &self.log_dir)
            .field("quiet", &self.quiet)
            .field("group_renders", &self.group_renders)
            .field("render_workers", &self.render_workers)
            .field("relog_compress", &self.relog_compress)
            .field("heartbeat", &self.heartbeat)
            .field("observer", &self.observer.as_ref().map(|_| "<custom>"))
            .field("executor", &self.executor.as_ref().map(|_| "<custom>"))
            .finish()
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            trace_dir: None,
            log_dir: None,
            quiet: false,
            group_renders: true,
            render_workers: 0,
            relog_compress: false,
            heartbeat: Some(std::time::Duration::from_secs(10)),
            observer: None,
            executor: None,
        }
    }
}

impl SweepOptions {
    /// The observer events go to: the installed one, else the stderr
    /// default (or the null observer under `quiet`).
    pub fn effective_observer(&self) -> Arc<dyn SweepObserver> {
        match &self.observer {
            Some(o) => Arc::clone(o),
            None if self.quiet => Arc::new(NullObserver),
            None => Arc::new(StderrObserver),
        }
    }

    /// The executor these options describe: the installed override, else
    /// a [`ThreadExecutor`] built from the fields.
    fn executor(&self) -> Arc<dyn Executor + Send + Sync> {
        if let Some(e) = &self.executor {
            return Arc::clone(e);
        }
        Arc::new(ThreadExecutor {
            workers: self.workers,
            group_renders: self.group_renders,
            log_dir: self.log_dir.clone(),
            render_workers: self.render_workers,
            relog_compress: self.relog_compress,
            heartbeat: self.heartbeat,
        })
    }

    /// The plan with every render job a cached `.relog` covers marked
    /// satisfied. Borrowed (no copy) without a log directory or with
    /// grouping off — the per-cell path measures the full monolithic
    /// pipeline, so it never substitutes cached artifacts.
    fn annotated<'a>(&self, plan: &'a SweepPlan) -> std::borrow::Cow<'a, SweepPlan> {
        if self.group_renders && self.log_dir.is_some() {
            let mut plan = plan.clone();
            plan.attach_cached_logs(&crate::artifacts::RenderLogCache::new(self.log_dir.clone()));
            std::borrow::Cow::Owned(plan)
        } else {
            std::borrow::Cow::Borrowed(plan)
        }
    }
}

/// One finished cell: its grid point plus the full simulator report.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The grid point.
    pub cell: Cell,
    /// The simulator's report.
    pub report: RunReport,
}

/// What a stored sweep produced overall.
#[derive(Debug)]
pub struct SweepSummary {
    /// Every record of the plan (for a shard: of that shard), in cell-id
    /// order.
    pub records: Vec<CellRecord>,
    /// Path of the regenerated `results.csv`.
    pub csv_path: PathBuf,
    /// Cells found already complete in the store.
    pub resumed: usize,
    /// Cells executed by this run.
    pub ran: usize,
}

/// Captures (or loads from cache) the named scenes.
fn capture(
    aliases: &[&'static str],
    frames: usize,
    width: u32,
    height: u32,
    opts: &SweepOptions,
) -> io::Result<HashMap<&'static str, Arc<Trace>>> {
    // Captures run the full geometry+raster pipeline per frame; the default
    // GpuConfig only carries screen geometry, and replay overrides it per
    // cell anyway.
    let capture_cfg = re_gpu::GpuConfig {
        width,
        height,
        ..re_gpu::GpuConfig::default()
    };
    let observer = opts.effective_observer();
    let capture_hist = re_obs::metrics::histogram(re_obs::names::STAGE_CAPTURE);
    let mut cache = TraceCache::new(opts.trace_dir.clone());
    let mut traces = HashMap::new();
    for &alias in aliases {
        if traces.contains_key(alias) {
            continue;
        }
        observer.on_event(&SweepEvent::CaptureStart {
            scene: alias,
            frames,
        });
        let sw = re_obs::Stopwatch::start();
        traces.insert(alias, cache.get(alias, frames, capture_cfg)?);
        let duration = sw.elapsed();
        capture_hist.record(duration);
        observer.on_event(&SweepEvent::CaptureDone {
            scene: alias,
            frames,
            duration,
        });
    }
    Ok(traces)
}

/// Captures (or loads from cache) every scene the grid references.
///
/// # Errors
/// Trace-cache I/O errors or unknown scene aliases.
pub fn capture_traces(
    grid: &ExperimentGrid,
    opts: &SweepOptions,
) -> io::Result<HashMap<&'static str, Arc<Trace>>> {
    capture(
        &grid.scene_aliases(),
        grid.frames,
        grid.width,
        grid.height,
        opts,
    )
}

/// Captures (or loads from cache) every scene the plan's cells reference —
/// for a shard or a resumed remainder, only the scenes it actually needs.
///
/// # Errors
/// Trace-cache I/O errors or unknown scene aliases.
pub fn capture_plan_traces(
    plan: &SweepPlan,
    opts: &SweepOptions,
) -> io::Result<HashMap<&'static str, Arc<Trace>>> {
    capture(
        &plan.scene_aliases(),
        plan.frames(),
        plan.width(),
        plan.height(),
        opts,
    )
}

/// Captures exactly the traces an execution of `plan` will touch: with
/// grouping, only scenes with at least one *unsatisfied* render job (a
/// plan fully covered by cached logs captures nothing); without grouping,
/// every scene.
fn capture_execution_traces(
    plan: &SweepPlan,
    opts: &SweepOptions,
) -> io::Result<HashMap<&'static str, Arc<Trace>>> {
    let aliases = if opts.group_renders {
        plan.pending_scene_aliases()
    } else {
        plan.scene_aliases()
    };
    capture(&aliases, plan.frames(), plan.width(), plan.height(), opts)
}

/// Runs one cell against a shared trace through the monolithic per-cell
/// path (Stage A + Stage B interleaved). The grouped path in
/// [`run_plan`]/[`run_grid`] produces identical reports while rendering
/// each key once.
pub fn run_cell(trace: &Arc<Trace>, cell: &Cell) -> RunReport {
    let mut scene = SharedTraceScene::new(Arc::clone(trace), cell.scene().to_string());
    let mut sim = Simulator::new(cell.point.sim_options());
    sim.run(&mut scene, cell.point.frames)
}

/// Runs Stage A for one render key: replays the scene's trace through the
/// functional GPU under the key's screen/tile/binning configuration.
pub fn render_key_log(trace: &Arc<Trace>, key: &RenderKey) -> RenderLog {
    let mut scene = SharedTraceScene::new(Arc::clone(trace), key.scene().to_string());
    render_scene(&mut scene, key.gpu_config(), key.frames())
}

/// Timing of one chunk of a frame-parallel Stage A render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTiming {
    /// Chunk index (0-based, frame order).
    pub chunk: usize,
    /// Frames the chunk rendered.
    pub frames: usize,
    /// Wall-clock time the chunk's render took.
    pub duration: std::time::Duration,
}

/// A frame-parallel Stage A render: the stitched log plus per-chunk
/// timings and the stitch cost, for events and metrics.
#[derive(Debug)]
pub struct ParallelRender {
    /// The stitched log — bit-identical to [`render_key_log`]'s output.
    pub log: RenderLog,
    /// Per-chunk timings in chunk order (a single entry when the render
    /// ran serially).
    pub chunks: Vec<ChunkTiming>,
    /// Time spent stitching chunk logs back together (zero for a serial
    /// render).
    pub stitch: std::time::Duration,
}

/// Runs Stage A for one render key across up to `render_workers` threads
/// and returns a log **bit-identical** to [`render_key_log`]'s.
///
/// The key's frame range is split into contiguous chunks
/// ([`re_core::chunk_ranges`]), each rendered by its own thread against a
/// fresh [`SharedTraceScene`] view of the shared trace, then stitched back
/// in frame order with color ids re-interned globally
/// ([`re_core::stitch_chunks`]). When there are fewer chunks than workers
/// (short renders), the leftover budget moves inside the frame: each chunk
/// renderer splits its tile grid into that many bands
/// ([`re_gpu::ParallelRaster`]). Both levels are exact — same pixels, same
/// logs, same [`re_gpu::raster_invocations`] count — so callers may pick
/// any budget, including per-run adaptive ones, without perturbing
/// results.
///
/// A budget of 0 or 1 (or a 0/1-frame render) falls back to the serial
/// path without spawning.
pub fn render_key_log_parallel(
    trace: &Arc<Trace>,
    key: &RenderKey,
    render_workers: usize,
) -> ParallelRender {
    let frames = key.frames();
    let budget = render_workers.max(1);
    let ranges = re_core::chunk_ranges(frames, budget);
    if budget == 1 || ranges.len() <= 1 {
        let sw = re_obs::Stopwatch::start();
        let log = render_key_log(trace, key);
        let duration = sw.elapsed();
        return ParallelRender {
            log,
            chunks: vec![ChunkTiming {
                chunk: 0,
                frames,
                duration,
            }],
            stitch: std::time::Duration::ZERO,
        };
    }
    let bands = (budget / ranges.len()).max(1);
    let parallel = (bands > 1).then_some(re_gpu::ParallelRaster { bands });
    let config = key.gpu_config();
    let rendered: Vec<(re_core::RenderChunk, std::time::Duration)> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let trace = Arc::clone(trace);
                s.spawn(move || {
                    let sw = re_obs::Stopwatch::start();
                    let mut scene = SharedTraceScene::new(trace, key.scene().to_string());
                    let chunk = re_core::render_chunk_with(&mut scene, config, range, parallel);
                    (chunk, sw.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("render chunk thread panicked"))
            .collect()
    });
    let mut chunks = Vec::with_capacity(rendered.len());
    let mut parts = Vec::with_capacity(rendered.len());
    for (i, (part, duration)) in rendered.into_iter().enumerate() {
        chunks.push(ChunkTiming {
            chunk: i,
            frames: part.frames.len(),
            duration,
        });
        parts.push(part);
    }
    let sw = re_obs::Stopwatch::start();
    let log = re_core::stitch_chunks(key.scene().to_string(), config, parts);
    let stitch = sw.elapsed();
    ParallelRender {
        log,
        chunks,
        stitch,
    }
}

/// Runs a compiled plan in memory on the default [`ThreadExecutor`] and
/// returns every outcome in cell-id order. With a
/// [`log_dir`](SweepOptions::log_dir), render jobs covered by valid cached
/// `.relog` artifacts skip Stage A entirely (and are excluded from trace
/// capture); fresh renders are persisted for the next run.
///
/// # Errors
/// Trace capture/caching errors.
pub fn run_plan(plan: &SweepPlan, opts: &SweepOptions) -> io::Result<Vec<CellOutcome>> {
    let plan = opts.annotated(plan);
    let traces = capture_execution_traces(&plan, opts)?;
    let observer = opts.effective_observer();
    Ok(opts
        .executor()
        .execute(plan.as_ref(), &traces, observer.as_ref(), &|_, _| {}))
}

/// Runs the whole grid in memory and returns every outcome in cell-id
/// order. This is the entry point `re-bench` layers its suite harness and
/// ablation studies on — a thin wrapper over [`SweepPlan::compile`] +
/// [`run_plan`].
///
/// # Errors
/// Trace capture/caching errors.
pub fn run_grid(grid: &ExperimentGrid, opts: &SweepOptions) -> io::Result<Vec<CellOutcome>> {
    run_plan(&SweepPlan::compile(grid), opts)
}

/// Runs a plan against a resumable store at `dir`: cells already recorded
/// there are skipped, newly finished cells are committed as they complete
/// (so a kill loses at most in-flight work), and `results.csv` is
/// regenerated from the plan's complete record set.
///
/// For a sharded plan the store carries the shard identity; it holds only
/// that shard's cells and its `results.csv` covers exactly them (merge the
/// per-shard stores with [`crate::merge_stores`] to reassemble the full
/// sweep).
///
/// # Errors
/// Store/trace I/O errors, including a store that belongs to a different
/// grid or a different shard of this grid.
pub fn run_plan_with_store(
    plan: &SweepPlan,
    opts: &SweepOptions,
    dir: impl Into<PathBuf>,
) -> io::Result<SweepSummary> {
    let (store, existing) = ResultStore::open_for_plan(dir, plan)?;
    let plan_ids: HashSet<usize> = plan.eval_jobs().iter().map(|j| j.cell.id).collect();
    if let Some(stray) = existing.iter().find(|r| !plan_ids.contains(&r.id)) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "store at {} holds cell id {}, which is not part of this {}",
                store.dir().display(),
                stray.id,
                match plan.shard_spec() {
                    Some(s) => format!("shard ({s})"),
                    None => "plan".to_string(),
                },
            ),
        ));
    }
    let done: HashSet<usize> = existing.iter().map(|r| r.id).collect();
    let pending = plan.without_cells(&done);
    let resumed = existing.len();
    let ran = pending.cell_count();
    let observer = opts.effective_observer();
    if resumed > 0 {
        observer.on_event(&SweepEvent::StoreResume {
            resumed,
            pending: ran,
        });
    }

    let outcomes = if ran == 0 {
        Vec::new()
    } else {
        // Cached render logs satisfy whatever keys they cover — a fully
        // warm resume rasterizes nothing.
        let pending = opts.annotated(&pending);
        // Capture only the scenes that still have pending cells (a resume
        // with one cell left must not re-capture the other nine
        // workloads) — and, of those, only the ones no cached log covers.
        let traces = capture_execution_traces(&pending, opts)?;
        // Commit from the worker so a killed sweep keeps finished cells.
        // A failed commit must not report success (an apparently complete
        // store that silently lacks records would poison later resumes and
        // merges), so the first store error is kept and returned after the
        // pool drains.
        let record_error = Mutex::new(None::<io::Error>);
        let outcomes =
            opts.executor()
                .execute(&pending, &traces, observer.as_ref(), &|cell, report| {
                    if let Err(e) = store.record(&CellRecord::from_run(cell, report)) {
                        record_error
                            .lock()
                            .expect("record_error lock poisoned")
                            .get_or_insert(e);
                    }
                });
        if let Some(e) = record_error
            .into_inner()
            .expect("record_error lock poisoned")
        {
            return Err(io::Error::new(
                e.kind(),
                format!("failed to commit a cell record to the store: {e}"),
            ));
        }
        outcomes
    };

    let mut records = existing;
    records.extend(
        outcomes
            .iter()
            .map(|o| CellRecord::from_run(&o.cell, &o.report)),
    );
    records.sort_by_key(|r| r.id);
    if records.len() != plan.cell_count() {
        return Err(io::Error::other(format!(
            "sweep incomplete: {} of {} cells recorded",
            records.len(),
            plan.cell_count()
        )));
    }
    let csv_path = store.write_csv(&records)?;
    Ok(SweepSummary {
        records,
        csv_path,
        resumed,
        ran,
    })
}

/// Runs the grid against a resumable store at `dir` — a thin wrapper over
/// [`SweepPlan::compile`] + [`run_plan_with_store`], kept for every
/// pre-plan caller.
///
/// # Errors
/// Store/trace I/O errors, including a store that belongs to a different
/// grid.
pub fn run_grid_with_store(
    grid: &ExperimentGrid,
    opts: &SweepOptions,
    dir: impl Into<PathBuf>,
) -> io::Result<SweepSummary> {
    run_plan_with_store(&SweepPlan::compile(grid), opts, dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> ExperimentGrid {
        let mut g = ExperimentGrid::default()
            .with_scenes(&["ccs", "tib"])
            .with_axis(crate::axis::TILE_SIZE, vec![16, 32]);
        g.frames = 3;
        g.width = 128;
        g.height = 64;
        g
    }

    fn quiet() -> SweepOptions {
        SweepOptions {
            workers: 2,
            quiet: true,
            ..SweepOptions::default()
        }
    }

    #[test]
    fn outcomes_arrive_in_cell_order() {
        let outcomes = run_grid(&tiny_grid(), &quiet()).expect("run");
        assert_eq!(outcomes.len(), 4);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.cell.id, i);
            assert_eq!(o.report.frames, 3);
            assert!(o.report.baseline.total_cycles() > 0);
        }
    }

    #[test]
    fn grouped_and_per_cell_paths_agree_exactly() {
        // Evaluation-only axes (sig bits × distance) on top of a render
        // axis (tile size): grouping shares logs within each key and the
        // reports must still be bit-identical to per-cell rendering.
        let grid = tiny_grid()
            .with_axis(crate::axis::SIG_BITS, vec![16, 32])
            .with_axis(crate::axis::COMPARE_DISTANCE, vec![1, 2]);
        let grouped = run_grid(&grid, &quiet()).expect("grouped");
        let per_cell = run_grid(
            &grid,
            &SweepOptions {
                group_renders: false,
                ..quiet()
            },
        )
        .expect("per-cell");
        assert_eq!(grouped.len(), per_cell.len());
        for (a, b) in grouped.iter().zip(&per_cell) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.report, b.report, "cell {}", a.cell.id);
        }
    }

    #[test]
    fn parallel_render_key_log_matches_serial_at_every_budget() {
        let grid = tiny_grid();
        let plan = SweepPlan::compile(&grid);
        let traces = capture_plan_traces(&plan, &quiet()).expect("capture");
        for job in plan.render_jobs() {
            let key = &job.key;
            let trace = &traces[key.scene()];
            let serial = render_key_log(trace, key);
            // Budgets below, at, and above the frame count (3), including
            // the degenerate 0/1 serial fallbacks.
            for budget in [0, 1, 2, 3, 8] {
                let par = render_key_log_parallel(trace, key, budget);
                assert_eq!(
                    par.log,
                    serial,
                    "{} ts{} budget {budget}",
                    key.scene(),
                    key.tile_size()
                );
                let chunk_frames: usize = par.chunks.iter().map(|c| c.frames).sum();
                assert_eq!(chunk_frames, key.frames(), "chunks cover every frame");
                if budget <= 1 {
                    assert_eq!(par.chunks.len(), 1, "serial fallback is one chunk");
                }
            }
        }
    }

    #[test]
    fn store_run_completes_and_is_idempotent() {
        let dir = std::env::temp_dir().join(format!("re_sweep_engine_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = tiny_grid();
        let first = run_grid_with_store(&grid, &quiet(), &dir).expect("run");
        assert_eq!(first.resumed, 0);
        assert_eq!(first.ran, 4);
        let csv = std::fs::read_to_string(&first.csv_path).unwrap();
        assert_eq!(csv.lines().count(), 5);

        // Second invocation: everything already recorded.
        let second = run_grid_with_store(&grid, &quiet(), &dir).expect("rerun");
        assert_eq!(second.resumed, 4);
        assert_eq!(second.ran, 0);
        assert_eq!(std::fs::read_to_string(&second.csv_path).unwrap(), csv);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_log_cache_reproduces_reports_bit_identically() {
        let base = std::env::temp_dir().join(format!("re_sweep_logdir_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let grid = tiny_grid().with_axis(crate::axis::SIG_BITS, vec![16, 32]);
        let with_logs = SweepOptions {
            log_dir: Some(base.join("logs")),
            ..quiet()
        };

        // Cold run writes one artifact per render key; warm run replays
        // them and must agree bit for bit with a cache-free run.
        let cold = run_grid(&grid, &with_logs).expect("cold run");
        let plan = SweepPlan::compile(&grid);
        let mut annotated = plan.clone();
        let satisfied = annotated.attach_cached_logs(&crate::artifacts::RenderLogCache::new(
            with_logs.log_dir.clone(),
        ));
        assert_eq!(satisfied, plan.render_job_count(), "cache fully warm");
        assert_eq!(annotated.satisfied_render_jobs(), satisfied);
        assert!(annotated.pending_scene_aliases().is_empty());

        let warm = run_grid(&grid, &with_logs).expect("warm run");
        let memory_only = run_grid(&grid, &quiet()).expect("no cache");
        for ((a, b), c) in warm.iter().zip(&cold).zip(&memory_only) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.report, b.report, "cell {}", a.cell.id);
            assert_eq!(a.report, c.report, "cell {}", a.cell.id);
        }

        // Store runs see the same artifacts: two stores, one cold and one
        // warm, regenerate byte-identical CSVs.
        let s1 = run_grid_with_store(&grid, &with_logs, base.join("store1")).expect("store cold");
        let s2 = run_grid_with_store(&grid, &with_logs, base.join("store2")).expect("store warm");
        assert_eq!(
            std::fs::read_to_string(&s1.csv_path).unwrap(),
            std::fs::read_to_string(&s2.csv_path).unwrap()
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn shard_store_runs_only_its_cells_and_records_identity() {
        let dir = std::env::temp_dir().join(format!("re_sweep_shardeng_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = SweepPlan::compile(&tiny_grid());
        let shard = plan.shard(0, 2).expect("shard");
        let summary = run_plan_with_store(&shard, &quiet(), &dir).expect("shard run");
        assert_eq!(summary.ran, shard.cell_count());
        assert!(summary.ran < plan.cell_count());

        // Re-running the shard resumes everything.
        let again = run_plan_with_store(&shard, &quiet(), &dir).expect("shard rerun");
        assert_eq!(again.resumed, shard.cell_count());
        assert_eq!(again.ran, 0);

        // Opening the same store unsharded (or as the other shard) fails.
        let err = run_plan_with_store(&plan, &quiet(), &dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let other = plan.shard(1, 2).expect("shard");
        let err = run_plan_with_store(&other, &quiet(), &dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
