//! The sweep engine: capture traces, render each key once, fan cells out,
//! aggregate results.
//!
//! Execution model:
//!
//! 1. every distinct scene of the grid is captured **once** into a trace
//!    (from the disk cache when available) — scene generators never cross a
//!    thread boundary;
//! 2. cells go through the work-stealing pool. With render grouping (the
//!    default), cells sharing a [`RenderKey`] — the same (scene, screen,
//!    tile size, binning) — share one lazily built `Arc<RenderLog>`: the
//!    first worker to reach a group runs Stage A, every cell of the group
//!    runs only Stage B, and the log is dropped when its last cell
//!    finishes. A sweep over evaluation-only axes (every registered axis
//!    classified `Eval`: signature width, compare distance, refresh, OT
//!    depth, L2, signature-compare cost, memo capacity) therefore
//!    rasterizes each key **exactly once** instead of once per cell;
//! 3. results are re-assembled in cell-id order, so every aggregate —
//!    returned reports, store records, the final CSV — is independent of
//!    worker count, scheduling and grouping.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use re_core::render::RenderLog;
use re_core::{evaluate, render_scene, RunReport, Simulator};
use re_trace::Trace;

use crate::grid::{Cell, ExperimentGrid, RenderKey};
use crate::pool;
use crate::store::{CellRecord, ResultStore};
use crate::trace_cache::{SharedTraceScene, TraceCache};

/// How a sweep executes (as opposed to *what* it runs, which is the grid).
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; 0 means one per available hardware thread.
    pub workers: usize,
    /// Directory for cached `.retrace` captures (`None` = capture in memory
    /// each run).
    pub trace_dir: Option<PathBuf>,
    /// Suppress per-cell progress lines on stderr.
    pub quiet: bool,
    /// Render each [`RenderKey`] once and share the log across its cells
    /// (the default). Disable to rebuild Stage A per cell — only useful for
    /// baselining and for equivalence tests.
    pub group_renders: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            trace_dir: None,
            quiet: false,
            group_renders: true,
        }
    }
}

impl SweepOptions {
    fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            pool::default_workers()
        } else {
            self.workers
        }
    }
}

/// One finished cell: its grid point plus the full simulator report.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The grid point.
    pub cell: Cell,
    /// The simulator's report.
    pub report: RunReport,
}

/// What a stored sweep produced overall.
#[derive(Debug)]
pub struct SweepSummary {
    /// Every record of the grid, in cell-id order.
    pub records: Vec<CellRecord>,
    /// Path of the regenerated `results.csv`.
    pub csv_path: PathBuf,
    /// Cells found already complete in the store.
    pub resumed: usize,
    /// Cells executed by this run.
    pub ran: usize,
}

/// Progress reporting shared by the workers.
struct Progress {
    done: AtomicUsize,
    total: usize,
    start: Instant,
    quiet: bool,
}

impl Progress {
    fn new(total: usize, quiet: bool) -> Self {
        Progress {
            done: AtomicUsize::new(0),
            total,
            start: Instant::now(),
            quiet,
        }
    }

    fn cell_done(&self, label: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.quiet {
            return;
        }
        let secs = self.start.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        eprintln!(
            "[sweep] {done}/{total} {label}  ({rate:.2} cells/s)",
            total = self.total
        );
    }
}

/// Captures (or loads from cache) every scene the grid references.
///
/// # Errors
/// Trace-cache I/O errors or unknown scene aliases.
pub fn capture_traces(
    grid: &ExperimentGrid,
    opts: &SweepOptions,
) -> io::Result<HashMap<&'static str, Arc<Trace>>> {
    // Captures run the full geometry+raster pipeline per frame; the default
    // GpuConfig only carries screen geometry, and replay overrides it per
    // cell anyway.
    let capture_cfg = re_gpu::GpuConfig {
        width: grid.width,
        height: grid.height,
        ..re_gpu::GpuConfig::default()
    };
    let mut cache = TraceCache::new(opts.trace_dir.clone());
    let mut traces = HashMap::new();
    for alias in grid.scene_aliases() {
        if traces.contains_key(alias) {
            continue;
        }
        if !opts.quiet {
            eprintln!("[sweep] capturing {alias} ({} frames)…", grid.frames);
        }
        traces.insert(alias, cache.get(alias, grid.frames, capture_cfg)?);
    }
    Ok(traces)
}

/// Runs one cell against a shared trace through the monolithic per-cell
/// path (Stage A + Stage B interleaved). The grouped path in
/// [`run_grid`]/[`run_grid_with_store`] produces identical reports while
/// rendering each key once.
pub fn run_cell(trace: &Arc<Trace>, cell: &Cell) -> RunReport {
    let mut scene = SharedTraceScene::new(Arc::clone(trace), cell.scene().to_string());
    let mut sim = Simulator::new(cell.point.sim_options());
    sim.run(&mut scene, cell.point.frames)
}

/// Runs Stage A for one render key: replays the scene's trace through the
/// functional GPU under the key's screen/tile/binning configuration.
pub fn render_key_log(trace: &Arc<Trace>, key: &RenderKey) -> RenderLog {
    let mut scene = SharedTraceScene::new(Arc::clone(trace), key.scene().to_string());
    render_scene(&mut scene, key.gpu_config(), key.frames())
}

/// A render group's shared state: the lazily built log plus the number of
/// cells still due to evaluate it (the log is dropped with the last one).
struct GroupSlot {
    log: Mutex<Option<Arc<RenderLog>>>,
    remaining: AtomicUsize,
}

fn run_cells(
    cells: Vec<Cell>,
    traces: &HashMap<&'static str, Arc<Trace>>,
    opts: &SweepOptions,
    on_done: impl Fn(&Cell, &RunReport) + Sync,
) -> Vec<CellOutcome> {
    let progress = Progress::new(cells.len(), opts.quiet);

    if !opts.group_renders {
        return pool::run_indexed(cells, opts.effective_workers(), |_i, cell| {
            let trace = &traces[cell.scene()];
            let report = run_cell(trace, &cell);
            on_done(&cell, &report);
            progress.cell_done(&cell.label());
            CellOutcome { cell, report }
        });
    }

    // One slot per render key. Work is seeded round-robin over the
    // scene-major cell order, so different workers tend to hit different
    // groups first and Stage A parallelizes across keys; within a group,
    // the first worker renders (holding only that group's lock) and the
    // rest evaluate the shared log.
    let mut groups: HashMap<RenderKey, GroupSlot> = HashMap::new();
    for cell in &cells {
        groups
            .entry(cell.render_key())
            .or_insert_with(|| GroupSlot {
                log: Mutex::new(None),
                remaining: AtomicUsize::new(0),
            })
            .remaining
            .fetch_add(1, Ordering::Relaxed);
    }
    if !opts.quiet {
        eprintln!(
            "[sweep] render grouping: {} cells share {} render keys",
            cells.len(),
            groups.len()
        );
    }

    pool::run_indexed(cells, opts.effective_workers(), |_i, cell| {
        let key = cell.render_key();
        let slot = &groups[&key];
        let log = {
            let mut guard = slot.log.lock().expect("group slot poisoned");
            match guard.as_ref() {
                Some(log) => Arc::clone(log),
                None => {
                    if !opts.quiet {
                        eprintln!("[sweep] rendering {} ts{}…", key.scene(), key.tile_size());
                    }
                    let log = Arc::new(render_key_log(&traces[key.scene()], &key));
                    *guard = Some(Arc::clone(&log));
                    log
                }
            }
        };
        let report = evaluate(&log, &cell.point.sim_options());
        drop(log);
        // Last cell of the group: free the log's memory early instead of
        // keeping every group alive until the sweep ends.
        if slot.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *slot.log.lock().expect("group slot poisoned") = None;
        }
        on_done(&cell, &report);
        progress.cell_done(&cell.label());
        CellOutcome { cell, report }
    })
}

/// Runs the whole grid in memory and returns every outcome in cell-id
/// order. This is the entry point `re-bench` layers its suite harness and
/// ablation studies on.
///
/// # Errors
/// Trace capture/caching errors.
pub fn run_grid(grid: &ExperimentGrid, opts: &SweepOptions) -> io::Result<Vec<CellOutcome>> {
    let traces = capture_traces(grid, opts)?;
    Ok(run_cells(grid.cells(), &traces, opts, |_, _| {}))
}

/// Runs the grid against a resumable store at `dir`: cells already recorded
/// there are skipped, newly finished cells are committed as they complete
/// (so a kill loses at most in-flight work), and `results.csv` is
/// regenerated from the complete record set.
///
/// # Errors
/// Store/trace I/O errors, including a store that belongs to a different
/// grid.
pub fn run_grid_with_store(
    grid: &ExperimentGrid,
    opts: &SweepOptions,
    dir: impl Into<PathBuf>,
) -> io::Result<SweepSummary> {
    let (store, existing) = ResultStore::open(dir, grid)?;
    let done: std::collections::HashSet<usize> = existing.iter().map(|r| r.id).collect();
    let pending: Vec<Cell> = grid
        .cells()
        .into_iter()
        .filter(|c| !done.contains(&c.id))
        .collect();
    let resumed = existing.len();
    let ran = pending.len();
    if !opts.quiet && resumed > 0 {
        eprintln!("[sweep] resuming: {resumed} cells already complete, {ran} to run");
    }

    let outcomes = if pending.is_empty() {
        Vec::new()
    } else {
        // Capture only the scenes that still have pending cells: a resume
        // with one cell left must not re-capture the other nine workloads.
        let needed: Vec<&str> = {
            let mut seen = std::collections::HashSet::new();
            pending
                .iter()
                .filter(|c| seen.insert(c.scene()))
                .map(|c| c.scene())
                .collect()
        };
        let capture_grid = grid.clone().with_scenes(&needed);
        let traces = capture_traces(&capture_grid, opts)?;
        // Commit from the worker so a killed sweep keeps finished cells.
        // A failed commit must not report success (an apparently complete
        // store that silently lacks records would poison later resumes and
        // merges), so the first store error is kept and returned after the
        // pool drains.
        let record_error = std::sync::Mutex::new(None::<io::Error>);
        let outcomes = run_cells(pending, &traces, opts, |cell, report| {
            if let Err(e) = store.record(&CellRecord::from_run(cell, report)) {
                record_error
                    .lock()
                    .expect("record_error lock poisoned")
                    .get_or_insert(e);
            }
        });
        if let Some(e) = record_error
            .into_inner()
            .expect("record_error lock poisoned")
        {
            return Err(io::Error::new(
                e.kind(),
                format!("failed to commit a cell record to the store: {e}"),
            ));
        }
        outcomes
    };

    let mut records = existing;
    records.extend(
        outcomes
            .iter()
            .map(|o| CellRecord::from_run(&o.cell, &o.report)),
    );
    records.sort_by_key(|r| r.id);
    if records.len() != grid.cell_count() {
        return Err(io::Error::other(format!(
            "sweep incomplete: {} of {} cells recorded",
            records.len(),
            grid.cell_count()
        )));
    }
    let csv_path = store.write_csv(&records)?;
    Ok(SweepSummary {
        records,
        csv_path,
        resumed,
        ran,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> ExperimentGrid {
        let mut g = ExperimentGrid::default()
            .with_scenes(&["ccs", "tib"])
            .with_axis(crate::axis::TILE_SIZE, vec![16, 32]);
        g.frames = 3;
        g.width = 128;
        g.height = 64;
        g
    }

    fn quiet() -> SweepOptions {
        SweepOptions {
            workers: 2,
            quiet: true,
            ..SweepOptions::default()
        }
    }

    #[test]
    fn outcomes_arrive_in_cell_order() {
        let outcomes = run_grid(&tiny_grid(), &quiet()).expect("run");
        assert_eq!(outcomes.len(), 4);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.cell.id, i);
            assert_eq!(o.report.frames, 3);
            assert!(o.report.baseline.total_cycles() > 0);
        }
    }

    #[test]
    fn grouped_and_per_cell_paths_agree_exactly() {
        // Evaluation-only axes (sig bits × distance) on top of a render
        // axis (tile size): grouping shares logs within each key and the
        // reports must still be bit-identical to per-cell rendering.
        let grid = tiny_grid()
            .with_axis(crate::axis::SIG_BITS, vec![16, 32])
            .with_axis(crate::axis::COMPARE_DISTANCE, vec![1, 2]);
        let grouped = run_grid(&grid, &quiet()).expect("grouped");
        let per_cell = run_grid(
            &grid,
            &SweepOptions {
                group_renders: false,
                ..quiet()
            },
        )
        .expect("per-cell");
        assert_eq!(grouped.len(), per_cell.len());
        for (a, b) in grouped.iter().zip(&per_cell) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.report, b.report, "cell {}", a.cell.id);
        }
    }

    #[test]
    fn store_run_completes_and_is_idempotent() {
        let dir = std::env::temp_dir().join(format!("re_sweep_engine_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = tiny_grid();
        let first = run_grid_with_store(&grid, &quiet(), &dir).expect("run");
        assert_eq!(first.resumed, 0);
        assert_eq!(first.ran, 4);
        let csv = std::fs::read_to_string(&first.csv_path).unwrap();
        assert_eq!(csv.lines().count(), 5);

        // Second invocation: everything already recorded.
        let second = run_grid_with_store(&grid, &quiet(), &dir).expect("rerun");
        assert_eq!(second.resumed, 4);
        assert_eq!(second.ran, 0);
        assert_eq!(std::fs::read_to_string(&second.csv_path).unwrap(), csv);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
