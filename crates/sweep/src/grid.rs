//! Experiment grids: the cross product of registered axes and their value
//! lists.
//!
//! A grid names the design-space the HPCA'19 paper explores — one value
//! list per axis in [`crate::axis::AXES`], crossed in registry order (the
//! scene axis is the outermost loop). Each point of the product is a
//! [`Cell`] with a stable integer id; cell ids (and therefore every
//! downstream artifact: store filenames, CSV row order) are a pure
//! function of the grid, independent of worker count or completion order.
//!
//! Nothing in this module names an individual axis: enumeration,
//! validation, spec strings, fingerprints and render keys are all derived
//! from the registry, so a new axis definition is automatically part of
//! every grid.

use re_gpu::{BinningMode, GpuConfig};

use crate::axis::{self, AxisDef, AxisId, ParamPoint, Presence, AXES, AXIS_COUNT};

/// Display name of a binning mode (used in CSV/JSON and CLI parsing) — a
/// thin view of the registry's name table.
pub fn binning_name(mode: BinningMode) -> &'static str {
    axis::BINNING_NAMES[axis::binning_to_raw(mode) as usize].0
}

/// Parses a binning-mode name (`bbox` / `exact`).
pub fn parse_binning(name: &str) -> Option<BinningMode> {
    AXES[axis::BINNING]
        .parse_value(name)
        .ok()
        .map(axis::binning_from_raw)
}

/// The subset of a cell that determines Stage A's output: two cells with
/// equal render keys rasterize pixel-identical frames, so the sweep engine
/// builds one shared [`re_core::RenderLog`] per key and fans out
/// evaluation-only jobs (see `engine`).
///
/// A key is a [`ParamPoint`] with every [`axis::AxisClass::Eval`] axis
/// reset to its default — derived from the registry's classification
/// rather than a hand-maintained field list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RenderKey(ParamPoint);

impl RenderKey {
    /// Workload alias.
    pub fn scene(&self) -> &'static str {
        self.0.scene()
    }

    /// Frames rendered.
    pub fn frames(&self) -> usize {
        self.0.frames
    }

    /// Tile edge in pixels (progress lines).
    pub fn tile_size(&self) -> u32 {
        self.0.tile_size()
    }

    /// The GPU configuration Stage A renders this key under.
    pub fn gpu_config(&self) -> GpuConfig {
        self.0.sim_options().gpu
    }
}

/// One experiment: a grid point (scene included) with its stable grid id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Position in the grid's deterministic enumeration order.
    pub id: usize,
    /// The full parameter point of this cell.
    pub point: ParamPoint,
}

impl Cell {
    /// Workload alias (`ccs` … `tib`).
    pub fn scene(&self) -> &'static str {
        self.point.scene()
    }

    /// A compact human-readable label for progress lines.
    pub fn label(&self) -> String {
        self.point.label()
    }

    /// The cell's render key — what Stage A's output depends on.
    pub fn render_key(&self) -> RenderKey {
        RenderKey(self.point.render_normalized())
    }
}

/// The cross product of per-axis value lists.
///
/// Axis values are held in registry order and only reachable through
/// validated setters, so a constructed grid is always enumerable.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentGrid {
    /// Frames per cell.
    pub frames: usize,
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    values: [Vec<u64>; AXIS_COUNT],
}

impl Default for ExperimentGrid {
    /// All ten workloads at the paper's design point, quarter resolution.
    fn default() -> Self {
        ExperimentGrid {
            frames: 24,
            width: 400,
            height: 256,
            values: std::array::from_fn(|a| AXES[a].default_values()),
        }
    }
}

impl ExperimentGrid {
    /// The value list of `axis`, in enumeration order.
    pub fn axis_values(&self, axis: AxisId) -> &[u64] {
        &self.values[axis]
    }

    /// Replaces the value list of `axis`.
    ///
    /// # Errors
    /// Rejects empty lists, out-of-domain values and duplicates (a
    /// duplicate would enumerate — and fully simulate — the same cell
    /// twice).
    pub fn set_axis(&mut self, axis: AxisId, values: Vec<u64>) -> Result<(), String> {
        let def: &AxisDef = &AXES[axis];
        if values.is_empty() {
            return Err(format!("axis `{}`: empty value list", def.name));
        }
        for (i, &v) in values.iter().enumerate() {
            if !def.is_valid(v) {
                return Err(format!(
                    "axis `{}`: value `{}` outside domain {}",
                    def.name,
                    def.format_value(v),
                    def.domain
                ));
            }
            if values[..i].contains(&v) {
                return Err(format!(
                    "axis `{}`: duplicate value `{}`",
                    def.name,
                    def.format_value(v)
                ));
            }
        }
        self.values[axis] = values;
        Ok(())
    }

    /// Builder form of [`set_axis`](Self::set_axis) for tests and
    /// programmatic grids.
    ///
    /// # Panics
    /// Panics on the errors `set_axis` reports.
    pub fn with_axis(mut self, axis: AxisId, values: impl Into<Vec<u64>>) -> Self {
        self.set_axis(axis, values.into())
            .expect("valid axis values");
        self
    }

    /// Builder that parses a CLI-style value list (`"8,16"`, `"bbox,exact"`,
    /// `"none,4"`, `"all"`) through the axis's own parser.
    ///
    /// # Panics
    /// Panics on values the CLI would reject.
    pub fn with_parsed(self, axis: AxisId, list: &str) -> Self {
        let values = AXES[axis].parse_list(list).expect("parsable axis list");
        self.with_axis(axis, values)
    }

    /// Builder that selects scenes by alias.
    ///
    /// # Panics
    /// Panics on unknown aliases or duplicates.
    pub fn with_scenes(self, aliases: &[&str]) -> Self {
        let scene = &AXES[axis::SCENE];
        let values: Vec<u64> = aliases
            .iter()
            .map(|a| scene.parse_value(a).expect("known workload alias"))
            .collect();
        self.with_axis(axis::SCENE, values)
    }

    /// Workload aliases of the scene axis, in enumeration order.
    pub fn scene_aliases(&self) -> Vec<&'static str> {
        self.values[axis::SCENE]
            .iter()
            .map(|&raw| {
                re_workloads::source::alias_at(raw as usize)
                    .expect("grid scene values are validated against the registry")
            })
            .collect()
    }

    /// Number of cells in the product.
    pub fn cell_count(&self) -> usize {
        self.values.iter().map(Vec::len).product()
    }

    /// Enumerates every cell in deterministic order (scene-major, then
    /// each axis in registry order). Ids are the enumeration index.
    ///
    /// # Panics
    /// Panics if the grid has no frames.
    pub fn cells(&self) -> Vec<Cell> {
        assert!(self.frames > 0, "grid needs at least one frame");
        let mut cells = Vec::with_capacity(self.cell_count());
        let mut idx = [0usize; AXIS_COUNT];
        'odometer: loop {
            let mut point = ParamPoint::new(self.width, self.height, self.frames);
            for (a, (values, &i)) in self.values.iter().zip(&idx).enumerate() {
                point.set(a, values[i]);
            }
            cells.push(Cell {
                id: cells.len(),
                point,
            });
            // Increment the innermost (last) axis first; carry outward.
            let mut a = AXIS_COUNT;
            loop {
                if a == 0 {
                    break 'odometer;
                }
                a -= 1;
                idx[a] += 1;
                if idx[a] < self.values[a].len() {
                    break;
                }
                idx[a] = 0;
            }
        }
        cells
    }

    /// Canonical textual form of the grid — what the fingerprint hashes
    /// and what the store records so a resumed run can prove it matches.
    ///
    /// One line per axis in registry order (scene first, then the grid
    /// scalars). [`Presence::NonDefault`] axes contribute a line only away
    /// from their default, so grids that never touch a newer axis keep the
    /// spec — and the fingerprint — they had before the axis existed.
    pub fn spec_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let join = |axis: &AxisDef, values: &[u64]| {
            values
                .iter()
                .map(|&v| axis.format_value(v))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(
            out,
            "{}={}\nframes={}\nscreen={}x{}",
            AXES[axis::SCENE].spec_key,
            join(&AXES[axis::SCENE], &self.values[axis::SCENE]),
            self.frames,
            self.width,
            self.height,
        );
        for (a, def) in AXES.iter().enumerate().skip(1) {
            if matches!(def.presence, Presence::NonDefault) && self.values[a] == [def.default] {
                continue;
            }
            let _ = writeln!(out, "{}={}", def.spec_key, join(def, &self.values[a]));
        }
        out
    }

    /// FNV-1a fingerprint of [`spec_string`](Self::spec_string); two grids
    /// with the same fingerprint enumerate the same cells.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.spec_string().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExperimentGrid {
        ExperimentGrid::default()
            .with_scenes(&["ccs", "ter"])
            .with_axis(axis::TILE_SIZE, vec![8, 16])
            .with_axis(axis::SIG_BITS, vec![16, 32])
            .with_axis(axis::COMPARE_DISTANCE, vec![1, 2])
    }

    #[test]
    fn cell_ids_are_dense_and_ordered() {
        let cells = small().cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert_eq!(cells.len(), small().cell_count());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id, i);
        }
        // Scene-major order.
        assert!(cells[..8].iter().all(|c| c.scene() == "ccs"));
        assert!(cells[8..].iter().all(|c| c.scene() == "ter"));
    }

    #[test]
    fn enumeration_is_reproducible() {
        assert_eq!(small().cells(), small().cells());
        assert_eq!(small().fingerprint(), small().fingerprint());
    }

    #[test]
    fn fingerprint_sees_every_axis_and_scalar() {
        let base = small();
        // A non-default single value per axis, generically.
        let alternates: [u64; AXIS_COUNT] = [1, 32, 8, 3, 4, 1, 4, 64, 8, 32];
        for (a, &alt) in alternates.iter().enumerate() {
            assert_ne!(alt, AXES[a].default, "test needs a non-default value");
            let variant = base.clone().with_axis(a, vec![alt]);
            assert_ne!(
                variant.fingerprint(),
                base.fingerprint(),
                "axis {}",
                AXES[a].name
            );
        }
        let frames = ExperimentGrid {
            frames: base.frames + 1,
            ..base.clone()
        };
        assert_ne!(frames.fingerprint(), base.fingerprint());
    }

    #[test]
    fn default_spec_and_fingerprint_match_the_pre_registry_store_format() {
        // Pinned against a store written by the hand-plumbed implementation
        // (PR 2): same spec bytes, same fingerprint — so old stores resume.
        let g = ExperimentGrid {
            frames: 2,
            width: 128,
            height: 64,
            ..ExperimentGrid::default()
        }
        .with_scenes(&["ccs"])
        .with_axis(axis::SIG_BITS, vec![16, 32]);
        assert_eq!(
            g.spec_string(),
            "scenes=ccs\nframes=2\nscreen=128x64\ntile_sizes=16\nsig_bits=16,32\n\
             compare_distances=2\nrefresh_periods=none\nbinnings=bbox\not_depths=16\n\
             l2_kb=256\nsig_compare_cycles=4\n"
        );
        assert_eq!(format!("{:016x}", g.fingerprint()), "fcec33e7aa062ca9");
        // The full default grid keeps its PR 2 fingerprint too.
        assert_eq!(
            format!("{:016x}", ExperimentGrid::default().fingerprint()),
            "c3835a31ff92d81d"
        );
    }

    #[test]
    fn non_default_memo_axis_enters_spec_and_fingerprint() {
        let base = small();
        let swept = base.clone().with_axis(axis::MEMO_KB, vec![4, 16]);
        assert!(!base.spec_string().contains("memo_kb"));
        assert!(swept.spec_string().contains("memo_kb=4,16"));
        assert_ne!(base.fingerprint(), swept.fingerprint());
    }

    #[test]
    fn cells_lower_to_sim_options() {
        let grid = small()
            .with_axis(axis::OT_DEPTH, vec![4])
            .with_axis(axis::L2_KB, vec![64])
            .with_parsed(axis::REFRESH_PERIOD, "6")
            .with_axis(axis::SIG_COMPARE_CYCLES, vec![7]);
        let opts = grid.cells()[0].point.sim_options();
        assert_eq!(opts.gpu.tile_size, 8);
        assert_eq!(opts.sig_bits, 16);
        assert_eq!(opts.compare_distance, 1);
        assert_eq!(opts.refresh_period, Some(6));
        assert_eq!(opts.timing.ot_queue_entries, 4);
        assert_eq!(opts.timing.l2_cache.size_bytes, 64 << 10);
        assert_eq!(opts.timing.sig_compare_cycles, 7);
    }

    #[test]
    fn render_key_ignores_evaluation_axes() {
        let cells = small().cells();
        // ccs cells at tile size 8: 2 sig_bits × 2 distances = 4 cells,
        // one render key.
        let keys: std::collections::HashSet<_> = cells
            .iter()
            .filter(|c| c.scene() == "ccs" && c.point.tile_size() == 8)
            .map(|c| c.render_key())
            .collect();
        assert_eq!(keys.len(), 1);
        let key = keys.into_iter().next().unwrap();
        assert_eq!(key.gpu_config().tile_size, 8);
        // A different tile size is a different key.
        assert_ne!(cells[0].render_key(), cells[4].render_key());
    }

    #[test]
    fn grid_setters_validate() {
        let mut g = ExperimentGrid::default();
        assert!(g.set_axis(axis::SIG_BITS, vec![33]).is_err());
        assert!(g.set_axis(axis::TILE_SIZE, vec![]).is_err());
        assert!(g
            .set_axis(axis::TILE_SIZE, vec![8, 8])
            .unwrap_err()
            .contains("duplicate"));
        assert!(g.set_axis(axis::TILE_SIZE, vec![8, 16]).is_ok());
    }

    #[test]
    fn binning_names_roundtrip() {
        for mode in [BinningMode::BoundingBox, BinningMode::ExactCoverage] {
            assert_eq!(parse_binning(binning_name(mode)), Some(mode));
        }
        assert_eq!(parse_binning("nope"), None);
    }
}
