//! Experiment grids: the cross product of configuration axes and scenes.
//!
//! A grid names the design-space the HPCA'19 paper explores — tile size,
//! signature width, compare distance, refresh policy, binning mode and the
//! machine's timing knobs — crossed with the benchmark scenes. Each point of
//! the product is a [`Cell`] with a stable integer id; cell ids (and
//! therefore every downstream artifact: store filenames, CSV row order) are
//! a pure function of the grid, independent of worker count or completion
//! order.

use re_core::SimOptions;
use re_gpu::{BinningMode, GpuConfig};
use re_timing::TimingConfig;

/// The subset of a cell that determines Stage A's output: two cells with
/// equal render keys rasterize pixel-identical frames, so the sweep engine
/// builds one shared [`re_core::RenderLog`] per key and fans out
/// evaluation-only jobs (see `engine`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RenderKey {
    /// Workload alias.
    pub scene: String,
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Frames rendered.
    pub frames: usize,
    /// Tile edge in pixels.
    pub tile_size: u32,
    /// Binning-mode name (`bbox` / `exact`; the name keeps the key `Hash`).
    pub binning: String,
}

impl RenderKey {
    /// The GPU configuration Stage A renders this key under.
    pub fn gpu_config(&self) -> GpuConfig {
        GpuConfig {
            width: self.width,
            height: self.height,
            tile_size: self.tile_size,
            binning: parse_binning(&self.binning).expect("render key holds a valid binning name"),
        }
    }
}

/// Display name of a binning mode (used in CSV/JSON and CLI parsing).
pub fn binning_name(mode: BinningMode) -> &'static str {
    match mode {
        BinningMode::BoundingBox => "bbox",
        BinningMode::ExactCoverage => "exact",
    }
}

/// Parses a binning-mode name (`bbox` / `exact`).
pub fn parse_binning(name: &str) -> Option<BinningMode> {
    match name {
        "bbox" => Some(BinningMode::BoundingBox),
        "exact" => Some(BinningMode::ExactCoverage),
        _ => None,
    }
}

/// One concrete simulator configuration (a grid point minus the scene).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellConfig {
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Frames simulated.
    pub frames: usize,
    /// Tile edge in pixels.
    pub tile_size: u32,
    /// Signature width stored in the Signature Buffer (1..=32).
    pub sig_bits: u32,
    /// Signature/color comparison distance.
    pub compare_distance: usize,
    /// Periodic forced refresh (`None` = never, the paper's configuration).
    pub refresh_period: Option<usize>,
    /// Polygon-List-Builder binning mode.
    pub binning: BinningMode,
    /// Signature Unit OT-queue depth.
    pub ot_depth: u32,
    /// L2 cache capacity in KiB.
    pub l2_kb: u32,
    /// Cycles charged per Signature Buffer compare at tile-scheduling time.
    pub sig_compare_cycles: u64,
}

impl CellConfig {
    /// Lowers this grid point to simulator options.
    pub fn sim_options(&self) -> SimOptions {
        let mut timing = TimingConfig::mali450();
        timing.ot_queue_entries = self.ot_depth;
        timing.l2_cache.size_bytes = self.l2_kb << 10;
        timing.sig_compare_cycles = self.sig_compare_cycles;
        SimOptions {
            gpu: GpuConfig {
                width: self.width,
                height: self.height,
                tile_size: self.tile_size,
                binning: self.binning,
            },
            timing,
            compare_distance: self.compare_distance,
            refresh_period: self.refresh_period,
            sig_bits: self.sig_bits,
        }
    }
}

/// One experiment: a scene under one configuration, with its grid id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Position in the grid's deterministic enumeration order.
    pub id: usize,
    /// Workload alias (`ccs` … `tib`).
    pub scene: String,
    /// The configuration of this grid point.
    pub config: CellConfig,
}

impl Cell {
    /// A compact human-readable label for progress lines.
    pub fn label(&self) -> String {
        let c = &self.config;
        format!(
            "{} ts{} sb{} d{} r{} {} ot{} l2:{}K sc{}",
            self.scene,
            c.tile_size,
            c.sig_bits,
            c.compare_distance,
            c.refresh_period.unwrap_or(0),
            binning_name(c.binning),
            c.ot_depth,
            c.l2_kb,
            c.sig_compare_cycles,
        )
    }

    /// The cell's render key — what Stage A's output depends on.
    pub fn render_key(&self) -> RenderKey {
        let c = &self.config;
        RenderKey {
            scene: self.scene.clone(),
            width: c.width,
            height: c.height,
            frames: c.frames,
            tile_size: c.tile_size,
            binning: binning_name(c.binning).to_string(),
        }
    }
}

/// The cross product of configuration axes and scenes.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentGrid {
    /// Workload aliases, in enumeration (and report) order.
    pub scenes: Vec<String>,
    /// Frames per cell.
    pub frames: usize,
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Tile-edge axis.
    pub tile_sizes: Vec<u32>,
    /// Signature-width axis.
    pub sig_bits: Vec<u32>,
    /// Compare-distance axis.
    pub compare_distances: Vec<usize>,
    /// Refresh-period axis (`None` = never refresh).
    pub refresh_periods: Vec<Option<usize>>,
    /// Binning-mode axis.
    pub binnings: Vec<BinningMode>,
    /// OT-queue-depth axis.
    pub ot_depths: Vec<u32>,
    /// L2-capacity axis in KiB.
    pub l2_kb: Vec<u32>,
    /// Signature-compare-cost axis in cycles.
    pub sig_compare_cycles: Vec<u64>,
}

impl Default for ExperimentGrid {
    /// All ten workloads at the paper's design point, quarter resolution.
    fn default() -> Self {
        ExperimentGrid {
            scenes: re_workloads::suite()
                .iter()
                .map(|b| b.alias.to_string())
                .collect(),
            frames: 24,
            width: 400,
            height: 256,
            tile_sizes: vec![16],
            sig_bits: vec![32],
            compare_distances: vec![2],
            refresh_periods: vec![None],
            binnings: vec![BinningMode::BoundingBox],
            ot_depths: vec![16],
            l2_kb: vec![256],
            sig_compare_cycles: vec![4],
        }
    }
}

impl ExperimentGrid {
    /// Number of cells in the product.
    pub fn cell_count(&self) -> usize {
        self.scenes.len()
            * self.tile_sizes.len()
            * self.sig_bits.len()
            * self.compare_distances.len()
            * self.refresh_periods.len()
            * self.binnings.len()
            * self.ot_depths.len()
            * self.l2_kb.len()
            * self.sig_compare_cycles.len()
    }

    /// Enumerates every cell in deterministic order (scene-major, then each
    /// axis in struct order). Ids are the enumeration index.
    ///
    /// # Panics
    /// Panics if any axis is empty or a value is out of range.
    pub fn cells(&self) -> Vec<Cell> {
        assert!(self.frames > 0, "grid needs at least one frame");
        for (name, empty) in [
            ("scenes", self.scenes.is_empty()),
            ("tile_sizes", self.tile_sizes.is_empty()),
            ("sig_bits", self.sig_bits.is_empty()),
            ("compare_distances", self.compare_distances.is_empty()),
            ("refresh_periods", self.refresh_periods.is_empty()),
            ("binnings", self.binnings.is_empty()),
            ("ot_depths", self.ot_depths.is_empty()),
            ("l2_kb", self.l2_kb.is_empty()),
            ("sig_compare_cycles", self.sig_compare_cycles.is_empty()),
        ] {
            assert!(!empty, "grid axis `{name}` is empty");
        }
        let mut cells = Vec::with_capacity(self.cell_count());
        for scene in &self.scenes {
            for &tile_size in &self.tile_sizes {
                for &sig_bits in &self.sig_bits {
                    for &compare_distance in &self.compare_distances {
                        for &refresh_period in &self.refresh_periods {
                            for &binning in &self.binnings {
                                for &ot_depth in &self.ot_depths {
                                    for &l2_kb in &self.l2_kb {
                                        for &sig_compare_cycles in &self.sig_compare_cycles {
                                            cells.push(Cell {
                                                id: cells.len(),
                                                scene: scene.clone(),
                                                config: CellConfig {
                                                    width: self.width,
                                                    height: self.height,
                                                    frames: self.frames,
                                                    tile_size,
                                                    sig_bits,
                                                    compare_distance,
                                                    refresh_period,
                                                    binning,
                                                    ot_depth,
                                                    l2_kb,
                                                    sig_compare_cycles,
                                                },
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Canonical textual form of the grid — what the fingerprint hashes and
    /// what the store records so a resumed run can prove it matches.
    pub fn spec_string(&self) -> String {
        fn join<T: std::fmt::Display>(xs: &[T]) -> String {
            xs.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        format!(
            "scenes={}\nframes={}\nscreen={}x{}\ntile_sizes={}\nsig_bits={}\n\
             compare_distances={}\nrefresh_periods={}\nbinnings={}\not_depths={}\nl2_kb={}\n\
             sig_compare_cycles={}\n",
            self.scenes.join(","),
            self.frames,
            self.width,
            self.height,
            join(&self.tile_sizes),
            join(&self.sig_bits),
            join(&self.compare_distances),
            self.refresh_periods
                .iter()
                .map(|r| r.map_or_else(|| "none".to_string(), |p| p.to_string()))
                .collect::<Vec<_>>()
                .join(","),
            self.binnings
                .iter()
                .map(|&b| binning_name(b))
                .collect::<Vec<_>>()
                .join(","),
            join(&self.ot_depths),
            join(&self.l2_kb),
            join(&self.sig_compare_cycles),
        )
    }

    /// FNV-1a fingerprint of [`spec_string`](Self::spec_string); two grids
    /// with the same fingerprint enumerate the same cells.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.spec_string().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExperimentGrid {
        ExperimentGrid {
            scenes: vec!["ccs".into(), "ter".into()],
            tile_sizes: vec![8, 16],
            sig_bits: vec![16, 32],
            compare_distances: vec![1, 2],
            ..ExperimentGrid::default()
        }
    }

    #[test]
    fn cell_ids_are_dense_and_ordered() {
        let cells = small().cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert_eq!(cells.len(), small().cell_count());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id, i);
        }
        // Scene-major order.
        assert!(cells[..8].iter().all(|c| c.scene == "ccs"));
        assert!(cells[8..].iter().all(|c| c.scene == "ter"));
    }

    #[test]
    fn enumeration_is_reproducible() {
        assert_eq!(small().cells(), small().cells());
        assert_eq!(small().fingerprint(), small().fingerprint());
    }

    #[test]
    fn fingerprint_sees_every_axis() {
        let base = small();
        for variant in [
            ExperimentGrid {
                frames: base.frames + 1,
                ..base.clone()
            },
            ExperimentGrid {
                tile_sizes: vec![32],
                ..base.clone()
            },
            ExperimentGrid {
                sig_bits: vec![8],
                ..base.clone()
            },
            ExperimentGrid {
                refresh_periods: vec![Some(4)],
                ..base.clone()
            },
            ExperimentGrid {
                binnings: vec![BinningMode::ExactCoverage],
                ..base.clone()
            },
            ExperimentGrid {
                ot_depths: vec![4],
                ..base.clone()
            },
            ExperimentGrid {
                l2_kb: vec![64],
                ..base.clone()
            },
            ExperimentGrid {
                sig_compare_cycles: vec![8],
                ..base.clone()
            },
        ] {
            assert_ne!(variant.fingerprint(), base.fingerprint(), "{variant:?}");
        }
    }

    #[test]
    fn cell_config_lowers_to_sim_options() {
        let mut grid = small();
        grid.ot_depths = vec![4];
        grid.l2_kb = vec![64];
        grid.refresh_periods = vec![Some(6)];
        grid.sig_compare_cycles = vec![7];
        let opts = grid.cells()[0].config.sim_options();
        assert_eq!(opts.gpu.tile_size, 8);
        assert_eq!(opts.sig_bits, 16);
        assert_eq!(opts.compare_distance, 1);
        assert_eq!(opts.refresh_period, Some(6));
        assert_eq!(opts.timing.ot_queue_entries, 4);
        assert_eq!(opts.timing.l2_cache.size_bytes, 64 << 10);
        assert_eq!(opts.timing.sig_compare_cycles, 7);
    }

    #[test]
    fn render_key_ignores_evaluation_axes() {
        let cells = small().cells();
        // ccs cells at tile size 8: 2 sig_bits × 2 distances = 4 cells,
        // one render key.
        let keys: std::collections::HashSet<_> = cells
            .iter()
            .filter(|c| c.scene == "ccs" && c.config.tile_size == 8)
            .map(|c| c.render_key())
            .collect();
        assert_eq!(keys.len(), 1);
        let key = keys.into_iter().next().unwrap();
        assert_eq!(key.gpu_config().tile_size, 8);
        // A different tile size is a different key.
        assert_ne!(cells[0].render_key(), cells[4].render_key());
    }

    #[test]
    fn binning_names_roundtrip() {
        for mode in [BinningMode::BoundingBox, BinningMode::ExactCoverage] {
            assert_eq!(parse_binning(binning_name(mode)), Some(mode));
        }
        assert_eq!(parse_binning("nope"), None);
    }
}
