//! Minimal dependency-free JSON reader/writer for the result store.
//!
//! The store persists flat records (strings, integers, floats); this module
//! implements just enough of RFC 8259 to round-trip them byte-exactly:
//! integers are kept apart from floats so `u64` counters survive without
//! precision loss, and floats are emitted with Rust's shortest-roundtrip
//! formatting so a parsed record equals the in-memory one bit for bit —
//! the property the sweep determinism tests (fresh run vs resumed run)
//! rely on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 is the shortest string that parses back to
                    // the same bits; force a fraction so it re-parses as Float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Serialization without insignificant whitespace (`to_string` comes with).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for the store's own
                        // output; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("invalid \\u escape {hex}"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this is
                // always on a boundary).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected value at byte {start}"));
    }
    if text.contains(['.', 'e', 'E']) {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_flat_record() {
        let v = Json::Obj(vec![
            ("id".into(), Json::Int(42)),
            ("scene".into(), Json::Str("ccs \"quoted\"\nline".into())),
            ("energy".into(), Json::Float(12345.678901234567)),
            ("whole".into(), Json::Float(2.0)),
            ("none".into(), Json::Null),
            ("ok".into(), Json::Bool(true)),
            ("list".into(), Json::Arr(vec![Json::Int(1), Json::Int(-2)])),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 9.87654321e18, f64::MAX] {
            let text = Json::Float(f).to_string();
            let back = Json::parse(&text).expect("parse");
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn large_counters_do_not_lose_precision() {
        let n = (1u64 << 60) + 12345;
        let text = Json::Int(n as i64).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"unterminated", "{\"a\" 1}", "nul", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": "x", "c": 1.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(1.5));
        assert!(v.get("d").is_none());
    }
}
