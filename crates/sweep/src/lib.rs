//! Parallel experiment orchestration for the Rendering Elimination
//! reproduction.
//!
//! The paper evaluates every design point — tile size, signature width,
//! compare distance, refresh policy, binning mode, machine parameters —
//! across ten game workloads. This crate turns that evaluation into a
//! first-class, parallel, resumable pipeline built around a **declarative
//! axis registry**:
//!
//! * [`axis`] — every sweep parameter is defined exactly once as an
//!   [`axis::AxisDef`] (name, CLI flag, parse/format, default, domain,
//!   render/evaluate classification, `SimOptions` lowering); grids, cells,
//!   CLI, CSV, store records, fingerprints, render keys and report tables
//!   are all derived from the registry;
//! * [`ExperimentGrid`] — the cross product of per-axis value lists ×
//!   scenes, enumerated into stable-id [`Cell`]s carrying a typed
//!   [`axis::ParamPoint`];
//! * [`artifacts`] — the on-disk artifact caches: each workload is
//!   captured **once** into a `.retrace` ([`TraceCache`]) and replayed per
//!   worker, so scene generators never need to be `Send`; each render
//!   key's Stage A log can be persisted as a `.relog`
//!   ([`RenderLogCache`]), letting resumed and sharded runs skip
//!   rasterization entirely;
//! * render grouping — cells sharing a [`RenderKey`] (every
//!   `Render`-classified axis, screen and frame count) share one
//!   `Arc<re_core::RenderLog>` built by the first worker to reach the
//!   group, so a sweep over evaluation-only axes rasterizes each key
//!   exactly once (O(render-keys), not O(cells)) — and zero times when a
//!   valid cached log covers the key;
//! * [`plan`] — [`SweepPlan::compile`] turns a grid into an explicit job
//!   graph (one [`RenderJob`] per render key, one [`EvalJob`] per cell)
//!   that callers can query, [shard by render key](SweepPlan::shard)
//!   across machines, or hand to a different executor;
//! * [`exec`] — the [`Executor`] trait and its work-stealing
//!   [`ThreadExecutor`], plus [`SweepObserver`] progress events (no more
//!   hardwired stderr), including a periodic `Progress` heartbeat with a
//!   windowed ETA; the [`AsyncExecutor`] overlaps `.relog` replay I/O
//!   with evaluation and deduplicates renders across concurrent
//!   executions through a shared [`InFlightRenders`] registry (the
//!   `sweep serve` daemon's executor);
//! * [`events`] — [`JsonlObserver`] writes every event as one line of a
//!   versioned, append-only `events.jsonl` beside the store, and
//!   [`events::read_events`] parses it back;
//! * [`profile`] — [`profile::Profile`] folds a run log into stage
//!   breakdowns, cache-hit accounting and per-scene / per-render-key /
//!   per-worker hotspots (`sweep profile`); process-wide counters and
//!   duration histograms live in the `re_obs` metrics registry
//!   (`sweep --metrics` dumps them as `metrics.json`);
//! * [`pool`] — a std-only work-stealing thread pool that fans cells out
//!   and reassembles results in cell-id order (`RE_SWEEP_WORKERS`
//!   overrides the default worker count);
//! * [`ResultStore`] — an on-disk store (per-cell JSON, committed
//!   atomically) plus a regenerated `results.csv`; a killed sweep resumes
//!   from completed cells and the final CSV is byte-identical to a fresh
//!   single-worker run, with or without render grouping;
//! * [`merge`] — [`merge_stores`] fingerprint-checks and unions per-shard
//!   stores into one whose `results.csv` is byte-identical to an
//!   unsharded run (`sweep merge`);
//! * [`report`] — per-axis marginal speedup tables computed straight from
//!   a store's records (`sweep report`);
//! * [`cli`] — registry-generated command-line parsing for the `sweep`
//!   binary, including the `sweep axes` self-documentation table.
//!
//! # Quickstart
//!
//! ```
//! use re_sweep::{axis, ExperimentGrid, SweepOptions};
//!
//! let mut grid = ExperimentGrid::default()
//!     .with_scenes(&["ccs"])
//!     .with_axis(axis::TILE_SIZE, vec![16, 32]);
//! grid.frames = 2;
//! grid.width = 128;
//! grid.height = 64;
//! let opts = SweepOptions { workers: 2, quiet: true, ..SweepOptions::default() };
//! let outcomes = re_sweep::run_grid(&grid, &opts).expect("sweep");
//! assert_eq!(outcomes.len(), 2);
//! assert!(outcomes[0].report.baseline.total_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod axis;
pub mod cli;
pub mod engine;
pub mod events;
pub mod exec;
pub mod grid;
pub mod importer;
pub mod json;
pub mod merge;
pub mod plan;
pub mod pool;
pub mod profile;
pub mod report;
pub mod store;

pub use artifacts::{capture_alias, RenderLogCache, SharedTraceScene, TraceCache};
pub use axis::{AxisClass, AxisDef, AxisId, ParamPoint, Presence, AXES, AXIS_COUNT};
pub use engine::{capture_plan_traces, capture_traces, render_key_log, run_cell};
pub use engine::{run_grid, run_grid_with_store, run_plan, run_plan_with_store};
pub use engine::{CellOutcome, SweepOptions, SweepSummary};
pub use events::{
    event_json, read_events, EventRecord, JsonlObserver, EVENTS_FILE, EVENTS_VERSION,
};
pub use exec::{
    AsyncExecutor, Executor, FlightClaim, FlightLease, FlightWait, InFlightRenders, MultiObserver,
    NullObserver, StderrObserver, SweepEvent, SweepObserver, ThreadExecutor,
};
pub use grid::{binning_name, parse_binning, Cell, ExperimentGrid, RenderKey};
pub use merge::{merge_stores, MergeSummary};
pub use plan::{EvalJob, RenderJob, ShardSpec, SweepPlan};
pub use profile::Profile;
pub use report::{axis_marginals, render_report, scene_table, AxisMarginal, SceneRow};
pub use store::{csv_axes, csv_header, read_records, read_store_meta, render_csv};
pub use store::{CellRecord, ResultStore, StoreMeta};
