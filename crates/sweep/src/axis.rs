//! The declarative sweep-axis registry: **one definition per parameter,
//! everything else derived**.
//!
//! Every knob the paper's sensitivity studies sweep (conf_hpca HPCA'19
//! §VI: tile size, signature width, compare distance, binning, OT depth,
//! L2 capacity, compare cost — plus the scene itself and the ISCA'14
//! memoization baseline's LUT capacity) is described by exactly one
//! [`AxisDef`] entry in [`AXES`]. From that single definition the sweep
//! subsystem derives:
//!
//! * grid enumeration order and stable cell ids ([`crate::ExperimentGrid`]);
//! * the CLI flag, its list parsing, domain validation and `--help` text
//!   ([`crate::cli`]), and the `sweep axes` self-documentation table;
//! * [`ParamPoint`] — the typed grid point that replaced the field-per-axis
//!   `CellConfig` — and its lowering into [`SimOptions`];
//! * render-key grouping: the [`AxisClass::Render`]/[`AxisClass::Eval`]
//!   split decides which axes are part of a cell's render key, so Stage A
//!   runs once per key with no hand-maintained key struct;
//! * `results.csv` columns, per-cell JSON record keys, store-spec lines and
//!   fingerprints, progress labels, and `sweep report` marginal tables.
//!
//! # Adding an axis
//!
//! Append one `AxisDef` entry to [`AXES`] (and its index constant). That is
//! the entire footprint: the CLI flag, help text, CSV column, JSON key,
//! spec line, label segment, report marginal and `SimOptions` lowering all
//! appear without touching the engine, store, report or CLI dispatch. The
//! `memo_kb` axis at the end of the registry is the worked example: it
//! feeds [`SimOptions::memo_kb`] (the fragment-memoization LUT capacity)
//! and exists nowhere else in the sweep crate. Give new axes
//! [`Presence::NonDefault`] so stores and CSVs produced by older grids stay
//! byte-identical: the axis only materializes in artifacts once a grid
//! actually departs from its default.
//!
//! # Example
//!
//! ```
//! use re_sweep::axis::{self, AXES};
//!
//! // Look an axis up by CLI flag, parse a value list, lower to options.
//! let id = axis::by_flag("--tile-sizes").unwrap();
//! let values = AXES[id].parse_list("8,16").unwrap();
//! assert_eq!(values, vec![8, 16]);
//!
//! let mut point = axis::ParamPoint::new(400, 256, 24);
//! point.set(id, 8);
//! assert_eq!(point.sim_options().gpu.tile_size, 8);
//!
//! // The Render/Eval classification drives render-once grouping.
//! assert!(matches!(AXES[id].class, axis::AxisClass::Render));
//! assert!(matches!(
//!     AXES[axis::SIG_BITS].class,
//!     axis::AxisClass::Eval
//! ));
//! ```

use re_core::SimOptions;
use re_gpu::BinningMode;

use crate::json::Json;

/// Index of an axis in [`AXES`] (and in a [`ParamPoint`]'s value array).
pub type AxisId = usize;

/// Whether varying the axis changes Stage A's output.
///
/// Cells that agree on every `Render` axis (plus screen size and frame
/// count) rasterize pixel-identical frames, so the engine renders one
/// shared log per render key and fans out evaluation-only jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisClass {
    /// Affects rasterization (part of the render key).
    Render,
    /// Affects only Stage B evaluation (shares render logs).
    Eval,
}

/// When the axis materializes in derived artifacts (CSV column, store-spec
/// line, label segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Presence {
    /// Always present (the original paper axes; their columns are part of
    /// the store format's compatibility surface).
    Always,
    /// Present only when a value departs from the default. New axes use
    /// this so existing grids keep byte-identical CSVs and fingerprints.
    NonDefault,
}

/// How an axis's raw `u64` values read and print.
#[derive(Debug, Clone, Copy)]
pub enum ValueRepr {
    /// A plain unsigned integer.
    UInt,
    /// An optional count: raw 0 encodes "none" in human-facing text while
    /// CSV/JSON keep the numeric 0 (the refresh-period convention).
    OptUInt,
    /// A closed set of named values; CSV/JSON store the name.
    Named(&'static [(&'static str, u64)]),
    /// A scene alias, stored as its index into the scene-source registry
    /// ([`re_workloads::source`]): the paper suite, the vector family, and
    /// runtime-registered `trace:<alias>` imports.
    Scene,
}

/// Name/raw table for the binning axis (kept `pub` so the classic
/// [`crate::binning_name`]/[`crate::parse_binning`] helpers stay thin
/// views of the registry).
pub const BINNING_NAMES: &[(&str, u64)] = &[("bbox", 0), ("exact", 1)];

/// The [`BinningMode`] a raw binning-axis value denotes.
pub fn binning_from_raw(raw: u64) -> BinningMode {
    match raw {
        0 => BinningMode::BoundingBox,
        _ => BinningMode::ExactCoverage,
    }
}

/// The raw binning-axis value of a [`BinningMode`].
pub fn binning_to_raw(mode: BinningMode) -> u64 {
    match mode {
        BinningMode::BoundingBox => 0,
        BinningMode::ExactCoverage => 1,
    }
}

/// One sweep parameter, defined exactly once.
///
/// Everything the sweep subsystem knows about a parameter — flag, parsing,
/// domain, classification, persistence, lowering — lives in this struct;
/// every consumer (grid, engine, store, report, CLI) iterates [`AXES`]
/// instead of naming axes.
pub struct AxisDef {
    /// Canonical name: CSV column, JSON record key, report marginal title.
    pub name: &'static str,
    /// CLI list flag (e.g. `--tile-sizes`).
    pub flag: &'static str,
    /// Line key in [`crate::ExperimentGrid::spec_string`] (the fingerprint
    /// input; legacy plural spellings are load-bearing for old stores).
    pub spec_key: &'static str,
    /// `(prefix, suffix)` of this axis's segment in a cell's progress
    /// label (e.g. `("l2:", "K")` renders `l2:256K`).
    pub label: (&'static str, &'static str),
    /// One-line description for `--help` and `sweep axes`.
    pub help: &'static str,
    /// Human-readable domain (`1..=32`, `bbox|exact`, …).
    pub domain: &'static str,
    /// Render/evaluate classification (drives render-key grouping).
    pub class: AxisClass,
    /// Artifact-presence policy (drives CSV/spec/label compatibility).
    pub presence: Presence,
    /// Value encoding.
    pub repr: ValueRepr,
    /// Default raw value (what absent store keys decode to).
    pub default: u64,
    /// Whether the default value *list* is the whole domain rather than
    /// `[default]` (the scene axis defaults to every workload).
    pub default_all: bool,
    /// Domain predicate over raw values.
    validate: fn(u64) -> bool,
    /// Lowers one raw value into the simulator options.
    apply: fn(u64, &mut SimOptions),
}

impl std::fmt::Debug for AxisDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AxisDef")
            .field("name", &self.name)
            .field("flag", &self.flag)
            .field("class", &self.class)
            .field("default", &self.default)
            .finish_non_exhaustive()
    }
}

impl AxisDef {
    /// Whether `raw` is inside the axis's domain.
    pub fn is_valid(&self, raw: u64) -> bool {
        let repr_ok = match self.repr {
            ValueRepr::UInt | ValueRepr::OptUInt => true,
            ValueRepr::Named(names) => names.iter().any(|&(_, r)| r == raw),
            ValueRepr::Scene => (raw as usize) < re_workloads::source::count(),
        };
        repr_ok && (self.validate)(raw)
    }

    /// Parses one value (one element of a CLI list).
    ///
    /// # Errors
    /// Describes the offending value and the axis's domain.
    pub fn parse_value(&self, s: &str) -> Result<u64, String> {
        let bad = || format!("{}: bad value `{s}` (domain: {})", self.flag, self.domain);
        let raw = match self.repr {
            ValueRepr::UInt => s.parse::<u64>().map_err(|_| bad())?,
            ValueRepr::OptUInt => match s {
                "none" => 0,
                _ => s.parse::<u64>().map_err(|_| bad())?,
            },
            ValueRepr::Named(names) => names
                .iter()
                .find(|&&(n, _)| n == s)
                .map(|&(_, r)| r)
                .ok_or_else(bad)?,
            ValueRepr::Scene => re_workloads::source::index_of(s)
                .map(|i| i as u64)
                .ok_or_else(|| {
                    let mut msg = format!("{}: unknown workload alias `{s}`", self.flag);
                    if let Some(near) = re_workloads::source::suggest(s) {
                        msg.push_str(&format!(" (did you mean `{near}`?)"));
                    }
                    msg
                })?,
        };
        if !self.is_valid(raw) {
            return Err(format!(
                "{}: value `{}` outside domain {}",
                self.flag,
                self.format_value(raw),
                self.domain
            ));
        }
        Ok(raw)
    }

    /// Human form of a raw value (`none`, `bbox`, `ccs`, plain numbers) —
    /// used by report tables, spec strings and help text.
    pub fn format_value(&self, raw: u64) -> String {
        match self.repr {
            ValueRepr::UInt => raw.to_string(),
            ValueRepr::OptUInt => {
                if raw == 0 {
                    "none".to_string()
                } else {
                    raw.to_string()
                }
            }
            ValueRepr::Named(names) => names
                .iter()
                .find(|&&(_, r)| r == raw)
                .map(|&(n, _)| n.to_string())
                .unwrap_or_else(|| raw.to_string()),
            ValueRepr::Scene => re_workloads::source::alias_at(raw as usize)
                .map(|a| a.to_string())
                .unwrap_or_else(|| raw.to_string()),
        }
    }

    /// CSV-cell form of a raw value. Identical to [`format_value`]
    /// (names for named axes) except that optional counts stay numeric —
    /// `refresh_period` has always been `0`, not `none`, in the CSV.
    ///
    /// [`format_value`]: Self::format_value
    pub fn csv_value(&self, raw: u64) -> String {
        match self.repr {
            ValueRepr::OptUInt => raw.to_string(),
            _ => self.format_value(raw),
        }
    }

    /// JSON record value of a raw value (numbers stay numbers, named axes
    /// and scenes store their name).
    pub fn json_value(&self, raw: u64) -> Json {
        match self.repr {
            ValueRepr::UInt | ValueRepr::OptUInt => Json::Int(raw as i64),
            ValueRepr::Named(_) | ValueRepr::Scene => Json::Str(self.format_value(raw)),
        }
    }

    /// Decodes a JSON record value written by [`json_value`]
    /// (`None` on type mismatch or unknown name).
    ///
    /// [`json_value`]: Self::json_value
    pub fn value_from_json(&self, v: &Json) -> Option<u64> {
        match self.repr {
            ValueRepr::UInt | ValueRepr::OptUInt => v.as_u64(),
            ValueRepr::Named(names) => {
                let s = v.as_str()?;
                names.iter().find(|&&(n, _)| n == s).map(|&(_, r)| r)
            }
            ValueRepr::Scene => {
                let s = v.as_str()?;
                re_workloads::source::index_of(s).map(|i| i as u64)
            }
        }
    }

    /// Every raw value of a closed domain (named axes and scenes), `None`
    /// for open numeric domains.
    ///
    /// For the scene axis this is deliberately the *paper suite* only —
    /// it is what `all` expands to, so vector scenes and imported traces
    /// never silently join existing grids (which would change their
    /// fingerprints); those are always named explicitly.
    pub fn domain_values(&self) -> Option<Vec<u64>> {
        match self.repr {
            ValueRepr::Named(names) => Some(names.iter().map(|&(_, r)| r).collect()),
            ValueRepr::Scene => Some((0..re_workloads::ALIASES.len() as u64).collect()),
            _ => None,
        }
    }

    /// The axis's default value *list* — `[default]`, or the whole domain
    /// when `default_all` is set (the scene axis).
    pub fn default_values(&self) -> Vec<u64> {
        if self.default_all {
            self.domain_values()
                .expect("default_all requires a closed domain")
        } else {
            vec![self.default]
        }
    }

    /// Parses a comma-separated CLI value list. `all` expands to the
    /// default list (the whole domain for the scene axis). Duplicate
    /// values are an error: the grid would otherwise enumerate — and fully
    /// simulate — the same cell twice.
    ///
    /// # Errors
    /// Bad values, out-of-domain values, duplicates, or an empty list.
    pub fn parse_list(&self, list: &str) -> Result<Vec<u64>, String> {
        if list.trim() == "all" {
            return Ok(self.default_values());
        }
        let mut out: Vec<u64> = Vec::new();
        for s in list.split(',') {
            let raw = self.parse_value(s.trim())?;
            if out.contains(&raw) {
                return Err(format!(
                    "{}: duplicate value `{}` (each cell would be simulated twice)",
                    self.flag,
                    self.format_value(raw)
                ));
            }
            out.push(raw);
        }
        if out.is_empty() {
            return Err(format!("{}: empty value list", self.flag));
        }
        Ok(out)
    }

    /// Lowers one raw value into `opts`.
    pub fn apply(&self, raw: u64, opts: &mut SimOptions) {
        (self.apply)(raw, opts)
    }
}

/// The scene (workload) axis.
pub const SCENE: AxisId = 0;
/// Tile edge in pixels (render-side).
pub const TILE_SIZE: AxisId = 1;
/// Signature width stored in the Signature Buffer.
pub const SIG_BITS: AxisId = 2;
/// Signature/color comparison distance in frames.
pub const COMPARE_DISTANCE: AxisId = 3;
/// Periodic forced-refresh period (0 = never).
pub const REFRESH_PERIOD: AxisId = 4;
/// Polygon-List-Builder binning mode (render-side).
pub const BINNING: AxisId = 5;
/// Signature Unit OT-queue depth.
pub const OT_DEPTH: AxisId = 6;
/// L2 cache capacity in KiB.
pub const L2_KB: AxisId = 7;
/// Cycles charged per Signature Buffer compare.
pub const SIG_COMPARE_CYCLES: AxisId = 8;
/// Fragment-memoization LUT capacity in KiB.
pub const MEMO_KB: AxisId = 9;
/// Number of registered axes.
pub const AXIS_COUNT: usize = 10;

/// The registry: one [`AxisDef`] per sweep parameter, in enumeration order
/// (the scene is the outermost loop, the last axis the innermost).
pub static AXES: [AxisDef; AXIS_COUNT] = [
    AxisDef {
        name: "scene",
        flag: "--scenes",
        spec_key: "scenes",
        label: ("", ""),
        help: "workload aliases",
        domain: "suite aliases (ccs..tib), vector scenes (vui vdoc vmap), imported `trace:<alias>`; `all` = the suite",
        class: AxisClass::Render,
        presence: Presence::Always,
        repr: ValueRepr::Scene,
        default: 0,
        default_all: true,
        validate: |_| true,
        apply: |_, _| {}, // selects the trace, not a simulator option
    },
    AxisDef {
        name: "tile_size",
        flag: "--tile-sizes",
        spec_key: "tile_sizes",
        label: ("ts", ""),
        help: "tile-edge axis in pixels",
        domain: "1..",
        class: AxisClass::Render,
        presence: Presence::Always,
        repr: ValueRepr::UInt,
        default: 16,
        default_all: false,
        validate: |v| (1..=u32::MAX as u64).contains(&v),
        apply: |v, o| o.gpu.tile_size = v as u32,
    },
    AxisDef {
        name: "sig_bits",
        flag: "--sig-bits",
        spec_key: "sig_bits",
        label: ("sb", ""),
        help: "signature-width axis in bits",
        domain: "1..=32",
        class: AxisClass::Eval,
        presence: Presence::Always,
        repr: ValueRepr::UInt,
        default: 32,
        default_all: false,
        validate: |v| (1..=32).contains(&v),
        apply: |v, o| o.sig_bits = v as u32,
    },
    AxisDef {
        name: "compare_distance",
        flag: "--distances",
        spec_key: "compare_distances",
        label: ("d", ""),
        help: "compare-distance axis in frames",
        domain: "1..",
        class: AxisClass::Eval,
        presence: Presence::Always,
        repr: ValueRepr::UInt,
        default: 2,
        default_all: false,
        validate: |v| v >= 1,
        apply: |v, o| o.compare_distance = v as usize,
    },
    AxisDef {
        name: "refresh_period",
        flag: "--refresh",
        spec_key: "refresh_periods",
        label: ("r", ""),
        help: "forced-refresh-period axis; `none` or a frame count",
        domain: "none|frame count",
        class: AxisClass::Eval,
        presence: Presence::Always,
        repr: ValueRepr::OptUInt,
        default: 0,
        default_all: false,
        validate: |_| true,
        apply: |v, o| o.refresh_period = if v == 0 { None } else { Some(v as usize) },
    },
    AxisDef {
        name: "binning",
        flag: "--binning",
        spec_key: "binnings",
        label: ("", ""),
        help: "Polygon-List-Builder binning axis",
        domain: "bbox|exact",
        class: AxisClass::Render,
        presence: Presence::Always,
        repr: ValueRepr::Named(BINNING_NAMES),
        default: 0,
        default_all: false,
        validate: |_| true,
        apply: |v, o| o.gpu.binning = binning_from_raw(v),
    },
    AxisDef {
        name: "ot_depth",
        flag: "--ot-depths",
        spec_key: "ot_depths",
        label: ("ot", ""),
        help: "Signature Unit OT-queue depth axis",
        domain: "1..",
        class: AxisClass::Eval,
        presence: Presence::Always,
        repr: ValueRepr::UInt,
        default: 16,
        default_all: false,
        validate: |v| (1..=u32::MAX as u64).contains(&v),
        apply: |v, o| o.timing.set_ot_depth(v as u32),
    },
    AxisDef {
        name: "l2_kb",
        flag: "--l2-kb",
        spec_key: "l2_kb",
        label: ("l2:", "K"),
        help: "L2 capacity axis in KiB",
        // Lower bound: one full cache set; upper: `kb << 10` must stay in
        // u32 for CacheGeometry::size_bytes.
        domain: "1..=4194303",
        class: AxisClass::Eval,
        presence: Presence::Always,
        repr: ValueRepr::UInt,
        default: 256,
        default_all: false,
        validate: |v| (1..=4_194_303).contains(&v),
        apply: |v, o| o.timing.set_l2_kb(v as u32),
    },
    AxisDef {
        name: "sig_compare_cycles",
        flag: "--sig-compare-cycles",
        spec_key: "sig_compare_cycles",
        label: ("sc", ""),
        help: "Signature Buffer compare-cost axis in cycles",
        domain: "0..",
        class: AxisClass::Eval,
        presence: Presence::Always,
        repr: ValueRepr::UInt,
        default: 4,
        default_all: false,
        validate: |_| true,
        apply: |v, o| o.timing.sig_compare_cycles = v,
    },
    AxisDef {
        name: "memo_kb",
        flag: "--memo-kb",
        spec_key: "memo_kb",
        label: ("mk", ""),
        help: "fragment-memoization LUT capacity axis in KiB",
        domain: "1..=1048576",
        class: AxisClass::Eval,
        presence: Presence::NonDefault,
        repr: ValueRepr::UInt,
        default: re_core::memo::DEFAULT_MEMO_KB as u64,
        default_all: false,
        validate: |v| (1..=1_048_576).contains(&v),
        apply: |v, o| o.memo_kb = v as u32,
    },
];

/// Looks an axis up by CLI flag.
pub fn by_flag(flag: &str) -> Option<AxisId> {
    AXES.iter().position(|a| a.flag == flag)
}

/// Looks an axis up by canonical name (CSV column / JSON key).
pub fn by_name(name: &str) -> Option<AxisId> {
    AXES.iter().position(|a| a.name == name)
}

/// One grid point: the typed, fixed-size replacement for the old
/// field-per-axis `CellConfig`.
///
/// Screen geometry and frame count are grid-level scalars (identical for
/// every cell); the per-axis raw values live in a registry-indexed array,
/// so adding an axis to [`AXES`] extends every point automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamPoint {
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Frames simulated.
    pub frames: usize,
    values: [u64; AXIS_COUNT],
}

impl ParamPoint {
    /// A point at every axis's default.
    pub fn new(width: u32, height: u32, frames: usize) -> Self {
        ParamPoint {
            width,
            height,
            frames,
            values: std::array::from_fn(|a| AXES[a].default),
        }
    }

    /// The raw value of `axis`.
    pub fn get(&self, axis: AxisId) -> u64 {
        self.values[axis]
    }

    /// Sets the raw value of `axis`.
    ///
    /// # Panics
    /// Panics if `raw` is outside the axis's domain.
    pub fn set(&mut self, axis: AxisId, raw: u64) {
        assert!(
            AXES[axis].is_valid(raw),
            "{}: value {raw} outside domain {}",
            AXES[axis].name,
            AXES[axis].domain
        );
        self.values[axis] = raw;
    }

    /// Workload alias of the scene axis.
    pub fn scene(&self) -> &'static str {
        re_workloads::source::alias_at(self.values[SCENE] as usize)
            .expect("scene index validated against the registry at set() time")
    }

    /// Tile edge in pixels.
    pub fn tile_size(&self) -> u32 {
        self.values[TILE_SIZE] as u32
    }

    /// Signature width in bits.
    pub fn sig_bits(&self) -> u32 {
        self.values[SIG_BITS] as u32
    }

    /// Compare distance in frames.
    pub fn compare_distance(&self) -> usize {
        self.values[COMPARE_DISTANCE] as usize
    }

    /// Forced-refresh period (`None` = never).
    pub fn refresh_period(&self) -> Option<usize> {
        match self.values[REFRESH_PERIOD] {
            0 => None,
            n => Some(n as usize),
        }
    }

    /// Binning mode.
    pub fn binning(&self) -> BinningMode {
        binning_from_raw(self.values[BINNING])
    }

    /// OT-queue depth.
    pub fn ot_depth(&self) -> u32 {
        self.values[OT_DEPTH] as u32
    }

    /// L2 capacity in KiB.
    pub fn l2_kb(&self) -> u32 {
        self.values[L2_KB] as u32
    }

    /// Signature-compare cost in cycles.
    pub fn sig_compare_cycles(&self) -> u64 {
        self.values[SIG_COMPARE_CYCLES]
    }

    /// Lowers this grid point to simulator options by applying every
    /// axis's `apply` on top of the defaults.
    pub fn sim_options(&self) -> SimOptions {
        let mut opts = SimOptions::default();
        opts.gpu.width = self.width;
        opts.gpu.height = self.height;
        for (axis, &raw) in AXES.iter().zip(&self.values) {
            axis.apply(raw, &mut opts);
        }
        opts
    }

    /// A compact human-readable label for progress lines
    /// (`ccs ts16 sb32 d2 r0 bbox ot16 l2:256K sc4`). Axes with
    /// [`Presence::NonDefault`] appear only away from their default.
    pub fn label(&self) -> String {
        let mut out = String::new();
        for (axis, &raw) in AXES.iter().zip(&self.values) {
            if matches!(axis.presence, Presence::NonDefault) && raw == axis.default {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(axis.label.0);
            out.push_str(&axis.csv_value(raw));
            out.push_str(axis.label.1);
        }
        out
    }

    /// This point with every [`AxisClass::Eval`] axis reset to its default
    /// — the canonical render-key form: two cells with equal normalized
    /// points rasterize pixel-identical frames.
    pub fn render_normalized(&self) -> ParamPoint {
        let mut p = *self;
        for (a, axis) in AXES.iter().enumerate() {
            if matches!(axis.class, AxisClass::Eval) {
                p.values[a] = axis.default;
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_flags_and_spec_keys_are_unique() {
        for pick in [
            |a: &AxisDef| a.name,
            |a: &AxisDef| a.flag,
            |a: &AxisDef| a.spec_key,
        ] {
            let mut seen: Vec<&str> = AXES.iter().map(pick).collect();
            seen.sort_unstable();
            let n = seen.len();
            seen.dedup();
            assert_eq!(seen.len(), n, "duplicate identifier in registry");
        }
    }

    #[test]
    fn every_default_is_inside_its_domain() {
        for axis in &AXES {
            assert!(axis.is_valid(axis.default), "{}", axis.name);
            for v in axis.default_values() {
                assert!(axis.is_valid(v), "{}: default list", axis.name);
            }
        }
    }

    #[test]
    fn parse_format_roundtrips_over_sample_domain_points() {
        for axis in &AXES {
            let samples = axis
                .domain_values()
                .unwrap_or_else(|| vec![axis.default, axis.default.max(1)]);
            for raw in samples {
                let human = axis.format_value(raw);
                assert_eq!(
                    axis.parse_value(&human).unwrap(),
                    raw,
                    "{}: `{human}`",
                    axis.name
                );
                let json = axis.json_value(raw);
                assert_eq!(axis.value_from_json(&json), Some(raw), "{}", axis.name);
            }
        }
    }

    #[test]
    fn render_axes_are_exactly_scene_tile_and_binning() {
        let render: Vec<&str> = AXES
            .iter()
            .filter(|a| matches!(a.class, AxisClass::Render))
            .map(|a| a.name)
            .collect();
        assert_eq!(render, ["scene", "tile_size", "binning"]);
    }

    #[test]
    fn parse_list_rejects_duplicates_and_empties() {
        let tiles = &AXES[TILE_SIZE];
        assert_eq!(tiles.parse_list("8, 16").unwrap(), vec![8, 16]);
        assert!(tiles.parse_list("16,16").unwrap_err().contains("duplicate"));
        assert!(tiles.parse_list("").is_err());
        // `none` and `0` are the same refresh value — a duplicate.
        let refresh = &AXES[REFRESH_PERIOD];
        assert!(refresh
            .parse_list("none,0")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn all_expands_to_the_default_list() {
        assert_eq!(
            AXES[SCENE].parse_list("all").unwrap().len(),
            re_workloads::ALIASES.len()
        );
        assert_eq!(AXES[TILE_SIZE].parse_list("all").unwrap(), vec![16]);
    }

    #[test]
    fn domain_validation_matches_the_documented_ranges() {
        assert!(AXES[SIG_BITS].parse_value("33").is_err());
        assert!(AXES[SIG_BITS].parse_value("0").is_err());
        assert!(AXES[TILE_SIZE].parse_value("0").is_err());
        assert!(AXES[COMPARE_DISTANCE].parse_value("0").is_err());
        assert!(AXES[L2_KB].parse_value("4194304").is_err());
        assert!(AXES[MEMO_KB].parse_value("0").is_err());
        assert!(AXES[SCENE].parse_value("nope").is_err());
        assert_eq!(AXES[REFRESH_PERIOD].parse_value("none").unwrap(), 0);
    }

    #[test]
    fn sim_options_lowering_matches_the_legacy_cell_config() {
        let mut p = ParamPoint::new(128, 64, 4);
        p.set(TILE_SIZE, 8);
        p.set(SIG_BITS, 16);
        p.set(COMPARE_DISTANCE, 1);
        p.set(REFRESH_PERIOD, 6);
        p.set(BINNING, binning_to_raw(BinningMode::ExactCoverage));
        p.set(OT_DEPTH, 4);
        p.set(L2_KB, 64);
        p.set(SIG_COMPARE_CYCLES, 7);
        p.set(MEMO_KB, 8);
        let o = p.sim_options();
        assert_eq!((o.gpu.width, o.gpu.height), (128, 64));
        assert_eq!(o.gpu.tile_size, 8);
        assert_eq!(o.gpu.binning, BinningMode::ExactCoverage);
        assert_eq!(o.sig_bits, 16);
        assert_eq!(o.compare_distance, 1);
        assert_eq!(o.refresh_period, Some(6));
        assert_eq!(o.timing.ot_queue_entries, 4);
        assert_eq!(o.timing.l2_cache.size_bytes, 64 << 10);
        assert_eq!(o.timing.sig_compare_cycles, 7);
        assert_eq!(o.memo_kb, 8);
    }

    #[test]
    fn label_matches_the_legacy_shape_and_hides_default_new_axes() {
        let p = ParamPoint::new(400, 256, 24);
        assert_eq!(p.label(), "ccs ts16 sb32 d2 r0 bbox ot16 l2:256K sc4");
        let mut swept = p;
        swept.set(MEMO_KB, 4);
        assert_eq!(
            swept.label(),
            "ccs ts16 sb32 d2 r0 bbox ot16 l2:256K sc4 mk4"
        );
    }

    #[test]
    fn scene_axis_covers_vector_and_imported_sources() {
        let scene = &AXES[SCENE];
        // The vector family sits right after the suite in the registry.
        let vui = scene.parse_value("vui").unwrap();
        assert_eq!(vui, re_workloads::ALIASES.len() as u64);
        assert_eq!(scene.format_value(vui), "vui");
        assert!(scene.is_valid(vui));
        // `all` still expands to the paper suite only — fingerprints of
        // existing grids must not change.
        assert_eq!(
            scene.parse_list("all").unwrap().len(),
            re_workloads::ALIASES.len()
        );
        // Unknown aliases get a nearest-match suggestion.
        let err = scene.parse_value("vuii").unwrap_err();
        assert!(err.contains("did you mean `vui`"), "{err}");
        // Imported traces become parseable once registered, and roundtrip
        // through CSV/JSON forms like any other scene.
        let idx = re_workloads::source::register_trace(
            "axis-test",
            std::path::Path::new("/tmp/axis-test.retrace"),
            7,
        )
        .unwrap() as u64;
        assert_eq!(scene.parse_value("trace:axis-test").unwrap(), idx);
        assert_eq!(scene.format_value(idx), "trace:axis-test");
        assert_eq!(scene.csv_value(idx), "trace:axis-test");
        assert_eq!(scene.value_from_json(&scene.json_value(idx)), Some(idx));
        let mut p = ParamPoint::new(64, 64, 2);
        p.set(SCENE, idx);
        assert_eq!(p.scene(), "trace:axis-test");
    }

    #[test]
    fn render_normalization_erases_exactly_the_eval_axes() {
        let mut p = ParamPoint::new(128, 64, 3);
        p.set(TILE_SIZE, 8);
        p.set(SIG_BITS, 16);
        p.set(MEMO_KB, 4);
        let n = p.render_normalized();
        assert_eq!(n.get(TILE_SIZE), 8, "render axes survive");
        assert_eq!(n.get(SIG_BITS), AXES[SIG_BITS].default);
        assert_eq!(n.get(MEMO_KB), AXES[MEMO_KB].default);
    }
}
