//! Merging per-shard result stores back into one sweep (`sweep merge`).
//!
//! A sharded sweep leaves one store per shard (see [`crate::plan`]); this
//! module unions them into a single store that is indistinguishable from
//! an unsharded run — same per-cell records, and a `results.csv` that is
//! byte-identical because the CSV is a pure function of the full record
//! set in cell-id order.
//!
//! The merge is validated before anything is written:
//!
//! * every input store must carry the **same grid fingerprint** (stores
//!   from different grids mixed together would silently corrupt the
//!   result — the same check that guards resume);
//! * cell ids must be **pairwise disjoint** (an overlap means the same
//!   shard was passed twice, or the inputs were not produced by a
//!   consistent `--shard K/N` partition);
//! * the union must **cover the full grid** (a missing shard would
//!   masquerade as a complete, smaller sweep).
//!
//! Every violation is reported with the offending directories and what to
//! do about it.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::plan::ShardSpec;
use crate::store::{read_records, read_store_meta, CellRecord, ResultStore, StoreMeta};

/// What a merge produced.
#[derive(Debug)]
pub struct MergeSummary {
    /// Every record of the merged grid, in cell-id order.
    pub records: Vec<CellRecord>,
    /// Path of the merged store's `results.csv`.
    pub csv_path: PathBuf,
    /// Number of input stores merged.
    pub inputs: usize,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Expands each input: a directory that is not itself a store but holds
/// `shard-*` children is replaced by those children in name order, so
/// `sweep merge <out> shards/` works directly on the layout sharded runs
/// conventionally write (`shards/shard-0/`, `shards/shard-1/`, …). A path
/// that is neither is kept as-is — the store-meta read then names it in
/// the usual "not a sweep store" error.
fn expand_inputs(inputs: &[PathBuf]) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for input in inputs {
        if !input.is_dir() || input.join("grid.json").is_file() {
            out.push(input.clone());
            continue;
        }
        let mut shards: Vec<PathBuf> = std::fs::read_dir(input)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.is_dir()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("shard-"))
            })
            .collect();
        if shards.is_empty() {
            out.push(input.clone());
            continue;
        }
        shards.sort();
        out.extend(shards);
    }
    Ok(out)
}

/// When every input is a shard of one `K/N` partition, the one-based `K/N`
/// names of the shards that were *not* passed — the actionable version of
/// a bare coverage failure. `None` when the inputs are not a consistent
/// shard set (mixed counts, or any unsharded store).
fn missing_shards(metas: &[StoreMeta]) -> Option<Vec<String>> {
    let count = metas.first()?.shard?.count;
    let mut present = vec![false; count];
    for meta in metas {
        let s = meta.shard?;
        if s.count != count {
            return None;
        }
        *present.get_mut(s.index)? = true;
    }
    Some(
        (0..count)
            .filter(|&i| !present[i])
            .map(|index| ShardSpec { index, count }.to_string())
            .collect(),
    )
}

/// Fingerprint-checks and unions the per-shard stores at `inputs` into a
/// fresh store at `out` (records plus a regenerated `results.csv`).
///
/// An input may also be a *directory of* shard stores: a directory that
/// is not itself a store but contains `shard-*` children is expanded to
/// those children in name order, so `sweep merge merged shards/` merges
/// `shards/shard-0/`, `shards/shard-1/`, … without listing each one.
///
/// The output store is unsharded: it can be resumed, reported on and
/// merged again exactly like a store produced by an unsharded run of the
/// same grid, and its `results.csv` is byte-identical to one.
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] when the inputs disagree on the grid
/// fingerprint, share a cell id, or fail to cover the whole grid — and
/// when `out` already holds cell records (merge only into a fresh or
/// empty store). Plain I/O errors propagate.
pub fn merge_stores(out: impl Into<PathBuf>, inputs: &[PathBuf]) -> io::Result<MergeSummary> {
    let out = out.into();
    if inputs.is_empty() {
        return Err(invalid(
            "merge needs at least one input store (sweep merge <out> <in>...)".to_string(),
        ));
    }
    let inputs = expand_inputs(inputs)?;
    if inputs.is_empty() {
        return Err(invalid(
            "the given directory holds no shard-* stores (sweep merge <out> <in>...)".to_string(),
        ));
    }

    // Identity check: one grid, every store.
    let metas: Vec<StoreMeta> = inputs
        .iter()
        .map(read_store_meta)
        .collect::<io::Result<_>>()?;
    let first_meta = metas[0].clone();
    for (dir, meta) in inputs.iter().zip(&metas).skip(1) {
        if meta.fingerprint != first_meta.fingerprint {
            return Err(invalid(format!(
                "grid fingerprint mismatch: {} has {:016x} but {} has {:016x} \
                 — merge only stores produced by `--shard` runs of one grid",
                inputs[0].display(),
                first_meta.fingerprint,
                dir.display(),
                meta.fingerprint,
            )));
        }
    }

    // Union with provenance, so an overlap names both stores.
    let mut sources: HashMap<usize, &Path> = HashMap::new();
    let mut records: Vec<CellRecord> = Vec::new();
    for dir in &inputs {
        for rec in read_records(dir)? {
            // read_records skips the id-range check ResultStore::open does;
            // without it here, a stray out-of-range record could mask a
            // missing cell in the count-based coverage check below.
            if rec.id >= first_meta.cells {
                return Err(invalid(format!(
                    "{}: cell id {} out of range for this grid ({} cells) \
                     — the store holds records from a different grid",
                    dir.display(),
                    rec.id,
                    first_meta.cells,
                )));
            }
            if let Some(prev) = sources.insert(rec.id, dir) {
                return Err(invalid(format!(
                    "cell id {} is present in both {} and {} \
                     — shards must be disjoint (was the same shard merged twice?)",
                    rec.id,
                    prev.display(),
                    dir.display(),
                )));
            }
            records.push(rec);
        }
    }
    records.sort_by_key(|r| r.id);

    // Coverage: the union must be the whole grid. When the inputs form a
    // consistent K/N shard set, name the absent shards — that is the
    // actionable fact — rather than raw cell ids.
    if records.len() != first_meta.cells {
        if let Some(shards) = missing_shards(&metas).filter(|s| !s.is_empty()) {
            return Err(invalid(format!(
                "the {} input store(s) cover {} of {} cells: shard(s) {} missing \
                 — run those shards and merge again",
                inputs.len(),
                records.len(),
                first_meta.cells,
                shards.join(", "),
            )));
        }
        let missing: Vec<String> = (0..first_meta.cells)
            .filter(|id| !sources.contains_key(id))
            .take(5)
            .map(|id| id.to_string())
            .collect();
        return Err(invalid(format!(
            "the {} input store(s) cover {} of {} cells (missing ids: {}{}) \
             — run and merge every shard of the grid",
            inputs.len(),
            records.len(),
            first_meta.cells,
            missing.join(", "),
            if records.len() + missing.len() < first_meta.cells {
                ", …"
            } else {
                ""
            },
        )));
    }

    // All checks passed: materialize the merged (unsharded) store.
    let merged_meta = StoreMeta {
        shard: None,
        ..first_meta
    };
    let (store, existing) = ResultStore::open_with_meta(&out, &merged_meta)?;
    if !existing.is_empty() {
        return Err(invalid(format!(
            "output store {} already holds {} cell record(s) \
             — merge into a fresh or empty directory",
            out.display(),
            existing.len(),
        )));
    }
    for rec in &records {
        store.record(rec)?;
    }
    let csv_path = store.write_csv(&records)?;
    Ok(MergeSummary {
        records,
        csv_path,
        inputs: inputs.len(),
    })
}
