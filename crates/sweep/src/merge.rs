//! Merging per-shard result stores back into one sweep (`sweep merge`).
//!
//! A sharded sweep leaves one store per shard (see [`crate::plan`]); this
//! module unions them into a single store that is indistinguishable from
//! an unsharded run — same per-cell records, and a `results.csv` that is
//! byte-identical because the CSV is a pure function of the full record
//! set in cell-id order.
//!
//! The merge is validated before anything is written:
//!
//! * every input store must carry the **same grid fingerprint** (stores
//!   from different grids mixed together would silently corrupt the
//!   result — the same check that guards resume);
//! * cell ids must be **pairwise disjoint** (an overlap means the same
//!   shard was passed twice, or the inputs were not produced by a
//!   consistent `--shard K/N` partition);
//! * the union must **cover the full grid** (a missing shard would
//!   masquerade as a complete, smaller sweep).
//!
//! Every violation is reported with the offending directories and what to
//! do about it.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::store::{read_records, read_store_meta, CellRecord, ResultStore, StoreMeta};

/// What a merge produced.
#[derive(Debug)]
pub struct MergeSummary {
    /// Every record of the merged grid, in cell-id order.
    pub records: Vec<CellRecord>,
    /// Path of the merged store's `results.csv`.
    pub csv_path: PathBuf,
    /// Number of input stores merged.
    pub inputs: usize,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Fingerprint-checks and unions the per-shard stores at `inputs` into a
/// fresh store at `out` (records plus a regenerated `results.csv`).
///
/// The output store is unsharded: it can be resumed, reported on and
/// merged again exactly like a store produced by an unsharded run of the
/// same grid, and its `results.csv` is byte-identical to one.
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] when the inputs disagree on the grid
/// fingerprint, share a cell id, or fail to cover the whole grid — and
/// when `out` already holds cell records (merge only into a fresh or
/// empty store). Plain I/O errors propagate.
pub fn merge_stores(out: impl Into<PathBuf>, inputs: &[PathBuf]) -> io::Result<MergeSummary> {
    let out = out.into();
    if inputs.is_empty() {
        return Err(invalid(
            "merge needs at least one input store (sweep merge <out> <in>...)".to_string(),
        ));
    }

    // Identity check: one grid, every store.
    let first_meta = read_store_meta(&inputs[0])?;
    for dir in &inputs[1..] {
        let meta = read_store_meta(dir)?;
        if meta.fingerprint != first_meta.fingerprint {
            return Err(invalid(format!(
                "grid fingerprint mismatch: {} has {:016x} but {} has {:016x} \
                 — merge only stores produced by `--shard` runs of one grid",
                inputs[0].display(),
                first_meta.fingerprint,
                dir.display(),
                meta.fingerprint,
            )));
        }
    }

    // Union with provenance, so an overlap names both stores.
    let mut sources: HashMap<usize, &Path> = HashMap::new();
    let mut records: Vec<CellRecord> = Vec::new();
    for dir in inputs {
        for rec in read_records(dir)? {
            // read_records skips the id-range check ResultStore::open does;
            // without it here, a stray out-of-range record could mask a
            // missing cell in the count-based coverage check below.
            if rec.id >= first_meta.cells {
                return Err(invalid(format!(
                    "{}: cell id {} out of range for this grid ({} cells) \
                     — the store holds records from a different grid",
                    dir.display(),
                    rec.id,
                    first_meta.cells,
                )));
            }
            if let Some(prev) = sources.insert(rec.id, dir) {
                return Err(invalid(format!(
                    "cell id {} is present in both {} and {} \
                     — shards must be disjoint (was the same shard merged twice?)",
                    rec.id,
                    prev.display(),
                    dir.display(),
                )));
            }
            records.push(rec);
        }
    }
    records.sort_by_key(|r| r.id);

    // Coverage: the union must be the whole grid.
    if records.len() != first_meta.cells {
        let missing: Vec<String> = (0..first_meta.cells)
            .filter(|id| !sources.contains_key(id))
            .take(5)
            .map(|id| id.to_string())
            .collect();
        return Err(invalid(format!(
            "the {} input store(s) cover {} of {} cells (missing ids: {}{}) \
             — run and merge every shard of the grid",
            inputs.len(),
            records.len(),
            first_meta.cells,
            missing.join(", "),
            if records.len() + missing.len() < first_meta.cells {
                ", …"
            } else {
                ""
            },
        )));
    }

    // All checks passed: materialize the merged (unsharded) store.
    let merged_meta = StoreMeta {
        shard: None,
        ..first_meta
    };
    let (store, existing) = ResultStore::open_with_meta(&out, &merged_meta)?;
    if !existing.is_empty() {
        return Err(invalid(format!(
            "output store {} already holds {} cell record(s) \
             — merge into a fresh or empty directory",
            out.display(),
            existing.len(),
        )));
    }
    for rec in &records {
        store.record(rec)?;
    }
    let csv_path = store.write_csv(&records)?;
    Ok(MergeSummary {
        records,
        csv_path,
        inputs: inputs.len(),
    })
}
