//! Shard determinism and merge validation (ISSUE acceptance criteria):
//!
//! * the small golden grid, run as 2-of-2 shards and merged with
//!   `merge_stores`, produces a `results.csv` byte-identical to the
//!   committed unsharded golden fixture;
//! * `merge_stores` rejects mismatched grid fingerprints, overlapping
//!   cell ids, incomplete coverage and non-empty outputs with clear,
//!   actionable errors;
//! * a proptest pins the partition law: for any grid shape and shard
//!   count, `shard(k, n)` splits render keys disjointly and totally, with
//!   each key's cells co-resident with it.

use std::collections::HashSet;
use std::path::PathBuf;

use proptest::prelude::*;
use re_sweep::{axis, merge_stores, ExperimentGrid, SweepOptions, SweepPlan};

const GOLDEN: &str = include_str!("fixtures/golden_small.csv");

/// The grid `fixtures/golden_small.csv` was generated from.
fn golden_grid() -> ExperimentGrid {
    let mut g = ExperimentGrid::default()
        .with_scenes(&["ccs", "tib"])
        .with_axis(axis::SIG_BITS, vec![16, 32])
        .with_axis(axis::COMPARE_DISTANCE, vec![1, 2]);
    g.frames = 3;
    g.width = 128;
    g.height = 64;
    g
}

fn opts() -> SweepOptions {
    SweepOptions {
        workers: 2,
        quiet: true,
        ..SweepOptions::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("re_sweep_shard_{tag}_{}", std::process::id()))
}

fn fresh(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs shard `k` of `n` of `grid` into a fresh store and returns its dir.
fn run_shard(grid: &ExperimentGrid, k: usize, n: usize, tag: &str) -> PathBuf {
    let dir = fresh(tag);
    let shard = SweepPlan::compile(grid).shard(k, n).expect("shard");
    re_sweep::run_plan_with_store(&shard, &opts(), &dir).expect("shard run");
    dir
}

#[test]
fn two_shards_merge_into_the_unsharded_golden_csv_byte_for_byte() {
    let grid = golden_grid();
    let s1 = run_shard(&grid, 0, 2, "golden_s1");
    let s2 = run_shard(&grid, 1, 2, "golden_s2");
    let merged = fresh("golden_merged");

    let summary = merge_stores(&merged, &[s1.clone(), s2.clone()]).expect("merge");
    assert_eq!(summary.inputs, 2);
    assert_eq!(summary.records.len(), grid.cell_count());
    let csv = std::fs::read_to_string(&summary.csv_path).expect("merged csv");
    assert_eq!(
        csv, GOLDEN,
        "merged shards must reproduce the unsharded results.csv byte for byte"
    );

    // The merged store is a first-class unsharded store: resuming the grid
    // against it finds everything complete.
    let resumed = re_sweep::run_grid_with_store(&grid, &opts(), &merged).expect("resume merged");
    assert_eq!(resumed.resumed, grid.cell_count());
    assert_eq!(resumed.ran, 0);

    for d in [s1, s2, merged] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn merge_rejects_mismatched_fingerprints() {
    let grid = golden_grid();
    let s1 = run_shard(&grid, 0, 2, "fp_s1");
    // A store of a *different* grid (frames differ → different fingerprint).
    let mut other = golden_grid();
    other.frames = 2;
    let alien = fresh("fp_alien");
    re_sweep::run_grid_with_store(&other, &opts(), &alien).expect("alien run");

    let err = merge_stores(fresh("fp_out"), &[s1.clone(), alien.clone()]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("fingerprint mismatch"), "{msg}");
    assert!(
        msg.contains(&s1.display().to_string()) && msg.contains(&alien.display().to_string()),
        "error must name both stores: {msg}"
    );
    assert!(msg.contains("--shard"), "must hint at the fix: {msg}");

    for d in [s1, alien] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn merge_rejects_overlapping_cell_ids() {
    let grid = golden_grid();
    // The same shard twice (under two directories) overlaps on every cell.
    let a = run_shard(&grid, 0, 2, "ov_a");
    let b = run_shard(&grid, 0, 2, "ov_b");

    let err = merge_stores(fresh("ov_out"), &[a.clone(), b.clone()]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("present in both"), "{msg}");
    assert!(
        msg.contains("merged twice"),
        "must explain the likely cause: {msg}"
    );

    for d in [a, b] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn merge_rejects_incomplete_coverage_and_names_missing_cells() {
    let grid = golden_grid();
    // A consistent shard set with a gap reports the absent shard by name…
    let s1 = run_shard(&grid, 0, 2, "cov_s1");
    let err = merge_stores(fresh("cov_out"), std::slice::from_ref(&s1)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("shard(s) 2/2 missing"), "{msg}");

    // …while a partial store that is not a shard set still reports the
    // missing cell ids.
    let partial = fresh("cov_partial");
    re_sweep::run_grid_with_store(&grid, &opts(), &partial).expect("full run");
    std::fs::remove_file(partial.join("cells/cell_00000.json")).expect("drop");
    let err = merge_stores(fresh("cov_out2"), std::slice::from_ref(&partial)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("missing ids: 0"), "{msg}");
    assert!(msg.contains("every shard"), "must say what to do: {msg}");

    for d in [s1, partial] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn merge_accepts_a_directory_of_shard_stores() {
    let grid = golden_grid();
    // The conventional sharded layout: one parent dir, shard-K children.
    let parent = fresh("dir_parent");
    for k in 0..2 {
        let dir = parent.join(format!("shard-{k}"));
        let shard = SweepPlan::compile(&grid).shard(k, 2).expect("shard");
        re_sweep::run_plan_with_store(&shard, &opts(), &dir).expect("shard run");
    }

    let merged = fresh("dir_merged");
    let summary = merge_stores(&merged, std::slice::from_ref(&parent)).expect("merge dir");
    assert_eq!(summary.inputs, 2, "parent expands to its shard-* children");
    let csv = std::fs::read_to_string(&summary.csv_path).expect("merged csv");
    assert_eq!(csv, GOLDEN);

    // A directory with no store and no shard-* children still errors
    // clearly.
    let empty = fresh("dir_empty");
    std::fs::create_dir_all(&empty).expect("mkdir");
    let err = merge_stores(fresh("dir_out2"), std::slice::from_ref(&empty)).unwrap_err();
    assert!(err.to_string().contains("not a sweep store"), "{err}");

    for d in [parent, merged, empty] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn merge_coverage_failure_names_the_missing_shards() {
    let grid = golden_grid();
    // Shards 1/3 and 3/3 present, 2/3 absent: the error must say so in
    // the same one-based K/N notation `--shard` takes.
    let s1 = run_shard(&grid, 0, 3, "ms_s1");
    let s3 = run_shard(&grid, 2, 3, "ms_s3");

    let err = merge_stores(fresh("ms_out"), &[s1.clone(), s3.clone()]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("shard(s) 2/3 missing"), "{msg}");
    assert!(msg.contains("run those shards"), "{msg}");

    for d in [s1, s3] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn merge_rejects_out_of_range_cell_ids() {
    // A stray record with an id beyond the grid (e.g. cell files copied
    // from a larger grid's store) must not mask a missing cell in the
    // coverage check.
    let grid = golden_grid();
    let s1 = run_shard(&grid, 0, 2, "oor_s1");
    let s2 = run_shard(&grid, 1, 2, "oor_s2");
    // Forge an out-of-range record in s1 by re-keying a real one.
    let donor = std::fs::read_to_string(s1.join("cells/cell_00000.json")).expect("donor");
    std::fs::write(
        s1.join("cells/cell_00099.json"),
        donor.replacen("\"id\":0", "\"id\":99", 1),
    )
    .expect("forge");
    // Drop a real cell so the count still matches the grid.
    std::fs::remove_file(s1.join("cells/cell_00001.json")).expect("drop");

    let err = merge_stores(fresh("oor_out"), &[s1.clone(), s2.clone()]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("out of range"), "{msg}");
    assert!(msg.contains("99"), "{msg}");

    for d in [s1, s2] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn merge_refuses_a_non_empty_output_store() {
    let grid = golden_grid();
    let s1 = run_shard(&grid, 0, 2, "ne_s1");
    let s2 = run_shard(&grid, 1, 2, "ne_s2");

    // Merging into a store that already holds records must fail loudly
    // rather than double-count or silently mix: into a completed unsharded
    // store…
    let full = fresh("ne_full");
    re_sweep::run_grid_with_store(&grid, &opts(), &full).expect("full run");
    let err = merge_stores(full.clone(), &[s1.clone(), s2.clone()]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("fresh or empty"), "{err}");

    // …and into one of the shard stores (caught as a shard-identity clash
    // before any record could be written).
    let err = merge_stores(s1.clone(), &[s1.clone(), s2.clone()]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("separate directory"), "{err}");

    let err = merge_stores(fresh("ne_out"), &[]).unwrap_err();
    assert!(err.to_string().contains("at least one input"), "{err}");

    for d in [s1, s2, full] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn merging_one_complete_store_round_trips() {
    let grid = golden_grid();
    let full = fresh("rt_full");
    let summary = re_sweep::run_grid_with_store(&grid, &opts(), &full).expect("full run");
    let full_csv = std::fs::read_to_string(&summary.csv_path).expect("csv");

    let out = fresh("rt_out");
    let merged = merge_stores(&out, std::slice::from_ref(&full)).expect("merge");
    assert_eq!(
        std::fs::read_to_string(&merged.csv_path).expect("merged csv"),
        full_csv
    );

    for d in [full, out] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `shard(k, n)` is an exact partition of the plan's render keys, for
    /// any grid shape: shards are pairwise disjoint (keys *and* cells),
    /// their union is total, and every key's cells stay co-resident with
    /// their key. Pure plan algebra — no simulation runs here.
    #[test]
    fn shard_partitions_render_keys_exactly(
        scene_mask in 1u32..(1 << 4),
        tile_mask in 1u32..(1 << 3),
        sig_mask in 1u32..(1 << 3),
        dist_mask in 1u32..(1 << 3),
        bin_mask in 1u32..(1 << 2),
        n in 1usize..=7,
    ) {
        // The vendored proptest has no subsequence strategy; non-zero
        // bitmasks over fixed candidate lists pick the same subsets.
        fn masked(mask: u32, candidates: &[u64]) -> Vec<u64> {
            candidates
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect()
        }
        let all = ["ccs", "ter", "mst", "tib"];
        let scenes: Vec<&str> = all
            .iter()
            .enumerate()
            .filter(|&(i, _)| scene_mask & (1 << i) != 0)
            .map(|(_, s)| *s)
            .collect();
        let mut grid = ExperimentGrid::default()
            .with_scenes(&scenes)
            .with_axis(axis::TILE_SIZE, masked(tile_mask, &[8, 16, 32]))
            .with_axis(axis::SIG_BITS, masked(sig_mask, &[8, 16, 32]))
            .with_axis(axis::COMPARE_DISTANCE, masked(dist_mask, &[1, 2, 4]))
            .with_axis(axis::BINNING, masked(bin_mask, &[0, 1]));
        grid.frames = 2;
        grid.width = 64;
        grid.height = 32;

        let plan = SweepPlan::compile(&grid);
        let mut seen_keys = HashSet::new();
        let mut seen_cells = HashSet::new();
        for k in 0..n {
            let shard = plan.shard(k, n).expect("shard");
            prop_assert_eq!(shard.total_cells(), plan.total_cells());
            prop_assert_eq!(shard.fingerprint(), plan.fingerprint());
            for rj in shard.render_jobs() {
                // Disjoint: no key in two shards.
                prop_assert!(seen_keys.insert(rj.key));
                // Co-resident: the shard holds *all* of the key's cells.
                let full = plan
                    .render_jobs()
                    .iter()
                    .find(|f| f.key == rj.key)
                    .expect("key from shard exists in full plan");
                prop_assert_eq!(&rj.cells, &full.cells);
            }
            for ej in shard.eval_jobs() {
                prop_assert!(seen_cells.insert(ej.cell.id));
                // Each eval job points at its own key's render job.
                prop_assert_eq!(
                    shard.render_jobs()[ej.render_job].key,
                    ej.cell.render_key()
                );
            }
        }
        // Total: the union is the whole plan.
        prop_assert_eq!(seen_keys.len(), plan.render_job_count());
        prop_assert_eq!(seen_cells.len(), plan.cell_count());
    }
}
