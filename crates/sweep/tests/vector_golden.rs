//! Vector-family golden CSV: the committed fixture pins `results.csv`
//! for a grid over the three vector scenes, byte for byte.
//!
//! The pin must hold across worker counts and with `.relog` artifacts in
//! both framings (`--relog-compress on|off`), cold and warm — the same
//! determinism contract the paper suite has, extended to the software
//! vector path. Regenerate the fixture (after an *intentional* output
//! change) with:
//!
//! ```text
//! RE_BLESS=1 cargo test -p re-sweep --test vector_golden
//! ```

use re_sweep::{CellRecord, ExperimentGrid, SweepOptions};

const GOLDEN: &str = include_str!("fixtures/golden_vector.csv");

/// `--scenes vui,vdoc,vmap --frames 30 --width 128 --height 64`, every
/// other axis at its default. 30 frames reaches each scene's animated
/// regime (the caret blinks from frame 9, the document scrolls from 22,
/// the map pans from 18) — fewer frames would pin three still images.
fn vector_grid() -> ExperimentGrid {
    let mut g = ExperimentGrid::default().with_scenes(&["vui", "vdoc", "vmap"]);
    g.frames = 30;
    g.width = 128;
    g.height = 64;
    g
}

fn csv_for(opts: &SweepOptions) -> String {
    let outcomes = re_sweep::run_grid(&vector_grid(), opts).expect("sweep");
    let records: Vec<CellRecord> = outcomes
        .iter()
        .map(|o| CellRecord::from_run(&o.cell, &o.report))
        .collect();
    re_sweep::render_csv(&records)
}

#[test]
fn vector_results_match_the_fixture_across_workers_and_relog_framings() {
    let reference = csv_for(&SweepOptions {
        workers: 1,
        quiet: true,
        ..SweepOptions::default()
    });
    if std::env::var_os("RE_BLESS").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/golden_vector.csv"
        );
        std::fs::write(path, &reference).expect("bless fixture");
    }
    assert_eq!(
        reference, GOLDEN,
        "serial vector-family results.csv must match the committed fixture"
    );

    // Worker count must not perturb a byte.
    let parallel = csv_for(&SweepOptions {
        workers: 4,
        quiet: true,
        ..SweepOptions::default()
    });
    assert_eq!(parallel, GOLDEN, "4-worker run diverged from the fixture");

    // Both .relog framings, cold (renders + writes artifacts) and warm
    // (evaluates entirely from decoded artifacts).
    for compress in [false, true] {
        let dir = std::env::temp_dir().join(format!(
            "re_vector_golden_{compress}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions {
            workers: 2,
            quiet: true,
            log_dir: Some(dir.clone()),
            relog_compress: compress,
            ..SweepOptions::default()
        };
        assert_eq!(
            csv_for(&opts),
            GOLDEN,
            "cold run diverged (relog-compress={compress})"
        );
        assert_eq!(
            csv_for(&opts),
            GOLDEN,
            "warm replay diverged (relog-compress={compress})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn vector_scenes_produce_distinct_redundancy_profiles() {
    // The three scenes exist to cover different coherence regimes; if two
    // ever collapse to the same skip rate the family lost its point.
    let outcomes = re_sweep::run_grid(
        &vector_grid(),
        &SweepOptions {
            workers: 2,
            quiet: true,
            ..SweepOptions::default()
        },
    )
    .expect("sweep");
    let mut skip: Vec<(String, f64)> = outcomes
        .iter()
        .map(|o| {
            let r = CellRecord::from_run(&o.cell, &o.report);
            (r.scene().to_string(), r.skip_pct())
        })
        .collect();
    skip.sort_by(|a, b| a.1.total_cmp(&b.1));
    for pair in skip.windows(2) {
        assert!(
            (pair[0].1 - pair[1].1).abs() > 0.5,
            "vector scenes {} and {} have near-identical skip rates ({:.2}% vs {:.2}%)",
            pair[0].0,
            pair[1].0,
            pair[0].1,
            pair[1].1
        );
    }
}
