//! Imported traces as first-class scene-axis values, end to end:
//! capture → export → `import_file` → `trace:<alias>` grid → results.
//!
//! The contract mirrors the built-in scenes': `results.csv` is
//! byte-identical across worker counts, and a warm artifact cache replays
//! the whole grid with **zero** raster invocations. The counter is
//! process-global, so this file holds a single test.

use re_sweep::{axis, CellRecord, ExperimentGrid, SweepOptions};

fn csv_for(grid: &ExperimentGrid, opts: &SweepOptions) -> String {
    let outcomes = re_sweep::run_grid(grid, opts).expect("sweep");
    let records: Vec<CellRecord> = outcomes
        .iter()
        .map(|o| CellRecord::from_run(&o.cell, &o.report))
        .collect();
    re_sweep::render_csv(&records)
}

#[test]
fn imported_trace_grids_are_deterministic_and_replay_from_a_warm_cache() {
    let dir = std::env::temp_dir().join(format!("re_trace_source_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // An "external" capture: the vector map scene recorded at a config
    // that does NOT match the grid below — import must re-capture the
    // replay under the grid's own screen/tile parameters.
    let src = dir.join("Exported Capture.retrace");
    let mut scene = re_workloads::source::builtin_scene("vmap").expect("vmap");
    re_trace::capture(
        &mut *scene,
        re_gpu::GpuConfig {
            width: 96,
            height: 96,
            tile_size: 8,
            ..Default::default()
        },
        40,
    )
    .save(&src)
    .unwrap();

    let imports = dir.join("imports");
    let outcome = re_sweep::importer::import_file(&src, None, &imports).expect("import succeeds");
    assert_eq!(outcome.alias, "trace:exported-capture");
    assert_eq!(outcome.frames, 40);

    // A two-cell grid over the imported trace (an eval-only second axis
    // keeps it one render key).
    let mut grid = ExperimentGrid::default()
        .with_scenes(&["trace:exported-capture"])
        .with_axis(axis::COMPARE_DISTANCE, vec![1, 2]);
    grid.frames = 8;
    grid.width = 128;
    grid.height = 64;
    assert_eq!(grid.scene_aliases(), ["trace:exported-capture"]);

    let cache = dir.join("cache");
    let opts = |workers| SweepOptions {
        workers,
        quiet: true,
        trace_dir: Some(cache.clone()),
        log_dir: Some(cache.clone()),
        ..SweepOptions::default()
    };

    // Cold: renders once, caches `.retrace` + `.relog` artifacts (with
    // the `:` sanitized out of the file names).
    let before = re_gpu::raster_invocations();
    let cold = csv_for(&grid, &opts(1));
    assert!(
        re_gpu::raster_invocations() - before > 0,
        "cold run must rasterize"
    );
    let cached: Vec<String> = std::fs::read_dir(&cache)
        .expect("cache dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        cached.iter().all(|name| !name.contains(':')),
        "artifact names must sanitize the alias colon: {cached:?}"
    );
    assert!(
        cached.iter().any(|n| n.contains("trace+exported-capture")),
        "expected sanitized artifacts in {cached:?}"
    );

    // Warm, different worker count: byte-identical CSV, zero rasters.
    let before = re_gpu::raster_invocations();
    let warm = csv_for(&grid, &opts(4));
    assert_eq!(
        re_gpu::raster_invocations() - before,
        0,
        "a warm cache must replay the imported-trace grid without rasterizing"
    );
    assert_eq!(
        cold, warm,
        "results.csv diverged across workers/cache state"
    );
    assert!(warm.contains("trace:exported-capture"), "{warm}");

    let _ = std::fs::remove_dir_all(&dir);
}
