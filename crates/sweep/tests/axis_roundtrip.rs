//! Per-axis round-trip property: CLI string → grid → enumeration → CSV row
//! → store JSON → parse back, for every registered axis and random
//! in-domain values.
//!
//! Everything here is generic over the registry: an axis added to
//! `re_sweep::axis::AXES` is covered with no change to this file (only the
//! in-domain sampler below needs a row if the axis's domain is numeric).

use proptest::prelude::*;
use re_sweep::{axis, CellRecord, ExperimentGrid, ParamPoint, AXES, AXIS_COUNT};

/// A uniform in-domain raw value for `axis` from a random seed.
fn sample(a: axis::AxisId, seed: u64) -> u64 {
    if let Some(domain) = AXES[a].domain_values() {
        return domain[seed as usize % domain.len()];
    }
    // Numeric domains: keep the samples small but off-default-capable.
    let raw = match a {
        axis::TILE_SIZE => 1 + seed % 64,
        axis::SIG_BITS => 1 + seed % 32,
        axis::COMPARE_DISTANCE => 1 + seed % 8,
        axis::REFRESH_PERIOD => seed % 16,
        axis::OT_DEPTH => 1 + seed % 64,
        axis::L2_KB => 1 + seed % 4096,
        axis::SIG_COMPARE_CYCLES => seed % 64,
        axis::MEMO_KB => 1 + seed % 256,
        _ => panic!("new numeric axis `{}` needs a sampler row", AXES[a].name),
    };
    assert!(
        AXES[a].is_valid(raw),
        "sampler produced out-of-domain value"
    );
    raw
}

/// Builds a record at `point` with deterministic dummy metrics.
fn record_at(point: ParamPoint, id: usize) -> CellRecord {
    CellRecord {
        id,
        point,
        baseline_cycles: 1000 + id as u64,
        re_cycles: 400 + id as u64,
        te_cycles: 900,
        tiles_rendered: 10,
        tiles_skipped: 22,
        false_positives: 1,
        baseline_energy_pj: 123.456,
        re_energy_pj: 23.4,
        baseline_dram_bytes: 4096,
        re_dram_bytes: 2048,
        memo_fragments_shaded: 7,
        memo_fragments_reused: 3,
    }
}

proptest! {
    /// One random axis, two random in-domain values: the CLI list string
    /// parses back to the same raws, the grid enumerates them in order,
    /// and a record survives CSV and JSON round-trips.
    #[test]
    fn cli_grid_csv_json_roundtrip(
        a in 0usize..AXIS_COUNT,
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        let (v1, v2) = (sample(a, s1), sample(a, s2));
        prop_assume!(v1 != v2);
        let def = &AXES[a];

        // CLI string → raw values.
        let cli = format!("{},{}", def.format_value(v1), def.format_value(v2));
        prop_assert_eq!(def.parse_list(&cli).unwrap(), vec![v1, v2]);

        // Grid → enumeration order (the axis cycles innermost-to-outermost
        // relative to the others, which all have one value).
        let mut grid = ExperimentGrid::default().with_scenes(&["ccs"]);
        grid.frames = 2;
        grid.set_axis(a, vec![v1, v2]).unwrap();
        let cells = grid.cells();
        prop_assert_eq!(cells.len(), 2);
        prop_assert_eq!(cells[0].point.get(a), v1);
        prop_assert_eq!(cells[1].point.get(a), v2);

        for (i, cell) in cells.iter().enumerate() {
            let rec = record_at(cell.point, i);

            // CSV row: the axis column carries the value's CSV form.
            let csv = re_sweep::render_csv(std::slice::from_ref(&rec));
            let mut lines = csv.lines();
            let header: Vec<&str> = lines.next().unwrap().split(',').collect();
            let row: Vec<&str> = lines.next().unwrap().split(',').collect();
            prop_assert_eq!(header.len(), row.len());
            let col = header.iter().position(|&h| h == def.name);
            match col {
                Some(c) => prop_assert_eq!(row[c], def.csv_value(cell.point.get(a))),
                // NonDefault axes stay out of the CSV at their default.
                None => prop_assert_eq!(cell.point.get(a), def.default),
            }

            // Store JSON → parsed record, bit-exact.
            let json = rec.to_json().to_string();
            let back = CellRecord::from_json(&re_sweep::json::Json::parse(&json).unwrap()).unwrap();
            prop_assert_eq!(&back, &rec);
            prop_assert_eq!(back.point.get(a), cell.point.get(a));
        }
    }

    /// Scene-axis values round-trip as aliases through every artifact.
    #[test]
    fn scene_axis_roundtrips_aliases(seed in any::<u64>()) {
        let raw = sample(axis::SCENE, seed);
        let alias = AXES[axis::SCENE].format_value(raw);
        prop_assert_eq!(AXES[axis::SCENE].parse_value(&alias).unwrap(), raw);
        let mut point = ParamPoint::new(128, 64, 2);
        point.set(axis::SCENE, raw);
        prop_assert_eq!(point.scene(), alias.as_str());
    }
}
