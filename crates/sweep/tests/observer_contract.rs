//! The observer contract of plan execution, and the run-log/metrics
//! surfaces built on it.
//!
//! What every executor must guarantee to observers, across worker counts
//! and kill/resume:
//!
//! * every render job announces itself exactly once — either a
//!   `RenderStart`/`RenderDone` pair (live Stage A) or one
//!   `RenderLogReplay` (cached artifact);
//! * every cell emits exactly one `CellDone` (and one `EvalDone` carrying
//!   its timing record);
//! * the `events.jsonl` run log round-trips: every line parses, and its
//!   totals match the result store it sits beside;
//! * observability is free of behavioral side effects: `results.csv` is
//!   byte-identical with and without the run log installed;
//! * the legacy `re_gpu::raster_invocations()` counter and the
//!   `gpu.raster_invocations` registry counter are the same number.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use re_sweep::{
    axis, read_events, EventRecord, ExperimentGrid, JsonlObserver, MultiObserver, Profile,
    SweepEvent, SweepObserver, SweepOptions, SweepPlan, EVENTS_FILE,
};

fn tiny_grid() -> ExperimentGrid {
    // 2 scenes × 2 sig widths = 4 cells sharing 2 render keys (sig_bits is
    // evaluation-side).
    let mut grid = ExperimentGrid::default()
        .with_scenes(&["ccs", "tib"])
        .with_axis(axis::SIG_BITS, vec![16, 32]);
    grid.frames = 2;
    grid.width = 128;
    grid.height = 64;
    grid
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("re_obs_contract_{}_{name}", std::process::id()))
}

/// Counts contract-relevant events, thread-safely.
#[derive(Default)]
struct Contract {
    render_starts: Mutex<usize>,
    render_dones: Mutex<usize>,
    replays: Mutex<usize>,
    cell_dones: Mutex<Vec<usize>>,
    eval_cells: Mutex<Vec<usize>>,
}

impl SweepObserver for Contract {
    fn on_event(&self, event: &SweepEvent<'_>) {
        match *event {
            SweepEvent::RenderStart { .. } => *self.render_starts.lock().unwrap() += 1,
            SweepEvent::RenderDone { .. } => *self.render_dones.lock().unwrap() += 1,
            SweepEvent::RenderLogReplay { .. } => *self.replays.lock().unwrap() += 1,
            SweepEvent::CellDone { done, .. } => self.cell_dones.lock().unwrap().push(done),
            SweepEvent::EvalDone { cell, .. } => self.eval_cells.lock().unwrap().push(cell),
            _ => {}
        }
    }
}

#[test]
fn every_render_job_and_cell_reports_exactly_once_across_worker_counts() {
    let grid = tiny_grid();
    let plan = SweepPlan::compile(&grid);
    let base = tmp("workers");
    let _ = std::fs::remove_dir_all(&base);

    for workers in [1, 2, 4] {
        let contract = Arc::new(Contract::default());
        let store_dir = base.join(format!("store_w{workers}"));
        let jsonl = JsonlObserver::append(store_dir.join(EVENTS_FILE), None).expect("run log");
        let opts = SweepOptions {
            workers,
            quiet: true,
            // A shared trace cache, but no .relog cache: every worker
            // count must render its keys live.
            trace_dir: Some(base.join("traces")),
            observer: Some(Arc::new(MultiObserver::new(vec![
                Arc::clone(&contract) as Arc<dyn SweepObserver>,
                Arc::new(jsonl),
            ]))),
            ..SweepOptions::default()
        };
        let summary = re_sweep::run_plan_with_store(&plan, &opts, &store_dir).expect("store run");
        assert_eq!(summary.ran, plan.cell_count());

        // Render jobs: one announcement each, all live (no cache here).
        assert_eq!(
            *contract.render_starts.lock().unwrap(),
            plan.render_job_count()
        );
        assert_eq!(
            *contract.render_dones.lock().unwrap(),
            plan.render_job_count()
        );
        assert_eq!(*contract.replays.lock().unwrap(), 0);

        // Cells: exactly one CellDone each, with `done` covering 1..=N.
        let mut dones = contract.cell_dones.lock().unwrap().clone();
        dones.sort_unstable();
        assert_eq!(
            dones,
            (1..=plan.cell_count()).collect::<Vec<_>>(),
            "w{workers}"
        );

        // EvalDone ids are exactly the store's record ids.
        let mut evals = contract.eval_cells.lock().unwrap().clone();
        evals.sort_unstable();
        let mut stored: Vec<usize> = summary.records.iter().map(|r| r.id).collect();
        stored.sort_unstable();
        assert_eq!(evals, stored, "w{workers}");

        // The run log beside the store round-trips and agrees with it.
        let events = read_events(store_dir.join(EVENTS_FILE)).expect("parse run log");
        let eval_lines = events
            .iter()
            .filter(|e| matches!(e, EventRecord::EvalDone { .. }))
            .count();
        assert_eq!(eval_lines, summary.records.len(), "w{workers}");
        assert!(matches!(events[0], EventRecord::RunStart { .. }));
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn run_log_survives_kill_resume_and_matches_the_store() {
    let grid = tiny_grid();
    let plan = SweepPlan::compile(&grid);
    let base = tmp("resume");
    let _ = std::fs::remove_dir_all(&base);
    let store_dir = base.join("store");
    let log_path = store_dir.join(EVENTS_FILE);
    let opts_with = |observer| SweepOptions {
        workers: 2,
        quiet: true,
        trace_dir: Some(base.join("traces")),
        observer: Some(observer),
        ..SweepOptions::default()
    };

    // Segment 1: the full grid.
    let jsonl = Arc::new(JsonlObserver::append(&log_path, None).expect("run log"));
    let first =
        re_sweep::run_plan_with_store(&plan, &opts_with(jsonl), &store_dir).expect("first run");
    assert_eq!(first.ran, plan.cell_count());

    // "Kill": drop two completed cells from the store, as if the process
    // died before committing them.
    for id in [0, 2] {
        std::fs::remove_file(store_dir.join("cells").join(format!("cell_{id:05}.json")))
            .expect("rm");
    }

    // Segment 2: the resume appends to the same run log.
    let jsonl = Arc::new(JsonlObserver::append(&log_path, None).expect("run log"));
    let second =
        re_sweep::run_plan_with_store(&plan, &opts_with(jsonl), &store_dir).expect("resume");
    assert_eq!(second.resumed, plan.cell_count() - 2);
    assert_eq!(second.ran, 2);

    // Every line of both segments parses; the segment structure is intact.
    let events = read_events(&log_path).expect("parse run log");
    let segments = events
        .iter()
        .filter(|e| matches!(e, EventRecord::RunStart { .. }))
        .count();
    assert_eq!(segments, 2);

    // Totals match the store: every store record id was evaluated exactly
    // once per time it was (re)run — 4 in segment 1, the 2 deleted ones in
    // segment 2 — and the resume announced what it skipped.
    let eval_ids: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            EventRecord::EvalDone { cell, .. } => Some(*cell),
            _ => None,
        })
        .collect();
    assert_eq!(eval_ids.len(), plan.cell_count() + 2);
    let mut stored: Vec<u64> = second.records.iter().map(|r| r.id as u64).collect();
    stored.sort_unstable();
    let mut seen = eval_ids.clone();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen, stored, "every stored cell appears in the run log");
    assert!(
        events.iter().any(|e| matches!(
            e,
            EventRecord::StoreResume {
                resumed: 2,
                pending: 2,
                ..
            }
        )),
        "the resume segment records what it skipped"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn warm_run_profile_shows_zero_render_time_and_full_replay_hits() {
    let grid = tiny_grid();
    let plan = SweepPlan::compile(&grid);
    let base = tmp("warm");
    let _ = std::fs::remove_dir_all(&base);
    let opts = |observer: Option<Arc<dyn SweepObserver>>| SweepOptions {
        workers: 2,
        quiet: true,
        trace_dir: Some(base.join("traces")),
        log_dir: Some(base.join("logs")),
        observer,
        ..SweepOptions::default()
    };

    // Cold pass fills the .relog cache.
    re_sweep::run_plan_with_store(&plan, &opts(None), base.join("cold")).expect("cold run");

    // Warm pass: fresh store, same artifact caches — Stage A never runs
    // (the engine re-annotates the plan against the now-warm cache).
    let store_dir = base.join("warm");
    let jsonl = Arc::new(JsonlObserver::append(store_dir.join(EVENTS_FILE), None).expect("log"));
    re_sweep::run_plan_with_store(&plan, &opts(Some(jsonl)), &store_dir).expect("warm run");

    let events = read_events(store_dir.join(EVENTS_FILE)).expect("parse run log");
    let profile = Profile::from_events(&events);
    assert_eq!(profile.renders, 0, "a warm cache renders nothing");
    assert_eq!(profile.render_ns, 0, "zero Stage A time in the profile");
    assert_eq!(profile.replays as usize, plan.render_job_count());
    assert_eq!(profile.replay_hit_pct(), Some(100.0));
    assert_eq!(profile.cells as usize, plan.cell_count());
    assert_eq!(profile.replayed_cells, profile.cells);
    let text = profile.render();
    assert!(text.contains("100.0% replay hits"), "{text}");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn legacy_raster_counter_is_the_registry_counter() {
    // They must agree *by construction* (same atomic), so sample after
    // forcing at least one rasterization via a tiny sweep.
    let mut grid = ExperimentGrid::default().with_scenes(&["ccs"]);
    grid.frames = 1;
    grid.width = 64;
    grid.height = 32;
    let opts = SweepOptions {
        workers: 1,
        quiet: true,
        ..SweepOptions::default()
    };
    re_sweep::run_grid(&grid, &opts).expect("tiny sweep");
    let legacy = re_gpu::raster_invocations();
    assert!(legacy > 0);
    assert_eq!(
        legacy,
        re_obs::global().counter_value("gpu.raster_invocations"),
        "legacy accessor and registry counter must be one number"
    );
}

#[test]
fn results_csv_is_byte_identical_with_observability_installed() {
    let grid = tiny_grid();
    let base = tmp("csv");
    let _ = std::fs::remove_dir_all(&base);
    let run = |store_dir: &std::path::Path, observer: Option<Arc<dyn SweepObserver>>| {
        let opts = SweepOptions {
            workers: 2,
            quiet: true,
            trace_dir: Some(base.join("traces")),
            observer,
            ..SweepOptions::default()
        };
        let summary = re_sweep::run_grid_with_store(&grid, &opts, store_dir).expect("run");
        std::fs::read(summary.csv_path).expect("csv")
    };

    let plain = run(&base.join("plain"), None);
    let observed_dir = base.join("observed");
    let jsonl = Arc::new(JsonlObserver::append(observed_dir.join(EVENTS_FILE), None).expect("log"));
    let observed = run(&observed_dir, Some(jsonl));
    assert_eq!(plain, observed, "observability must not change results.csv");
    let _ = std::fs::remove_dir_all(&base);
}
