//! End-to-end proof of the registry API: the `memo_kb` axis was added
//! purely as a registry definition (plus these tests) — no engine, store,
//! report or CLI dispatch edits — and still behaves as a full sweep axis:
//!
//! * it reaches the Memo pass (LUT capacity changes the reuse counters);
//! * it is evaluation-side: sweeping it adds **zero** extra rasterizations
//!   and leaves every RE/baseline metric untouched;
//! * it shows up in the CSV (column), store (JSON key), report (marginal)
//!   and label only when actually swept.

use re_sweep::{axis, CellRecord, ExperimentGrid, SweepOptions};

fn base_grid() -> ExperimentGrid {
    let mut g = ExperimentGrid::default().with_scenes(&["ccs"]);
    g.frames = 4;
    g.width = 128;
    g.height = 64;
    g
}

fn opts() -> SweepOptions {
    SweepOptions {
        workers: 2,
        quiet: true,
        ..SweepOptions::default()
    }
}

#[test]
fn memo_capacity_feeds_the_memo_pass_and_nothing_else() {
    // A starved 1 KiB LUT vs the paper's 16 KiB: same render, same RE
    // results, different memoization reuse.
    let grid = base_grid().with_axis(axis::MEMO_KB, vec![1, 16]);
    let outcomes = re_sweep::run_grid(&grid, &opts()).expect("sweep");
    assert_eq!(outcomes.len(), 2);
    let (small, big) = (&outcomes[0], &outcomes[1]);
    assert_eq!(small.cell.point.get(axis::MEMO_KB), 1);
    assert_eq!(big.cell.point.get(axis::MEMO_KB), 16);

    let total = |o: &re_sweep::CellOutcome| o.report.memo.total();
    assert_eq!(total(small), total(big), "same fragments processed");
    assert!(
        small.report.memo.fragments_reused < big.report.memo.fragments_reused,
        "a starved LUT must reuse fewer fragments ({} vs {})",
        small.report.memo.fragments_reused,
        big.report.memo.fragments_reused
    );

    // Evaluation-side: every non-memo metric is identical across the axis.
    assert_eq!(small.report.baseline, big.report.baseline);
    assert_eq!(small.report.re, big.report.re);
    assert_eq!(small.report.te, big.report.te);
    assert_eq!(small.cell.render_key(), big.cell.render_key());
}

#[test]
fn memo_axis_shares_render_logs_like_any_eval_axis() {
    // 4 memo capacities, 1 scene → 4 cells but exactly 1 render key, and
    // the grouped path must agree bit-for-bit with per-cell rendering.
    // (The rasterize-exactly-once counter proof lives in render_once.rs,
    // whose grid sweeps memo_kb too — the counter is process-global and
    // needs a test binary to itself.)
    let grid = base_grid().with_axis(axis::MEMO_KB, vec![1, 4, 16, 64]);
    let cells = grid.cells();
    let keys: std::collections::HashSet<_> = cells.iter().map(|c| c.render_key()).collect();
    assert_eq!(keys.len(), 1);

    let grouped = re_sweep::run_grid(&grid, &opts()).expect("grouped");
    let per_cell = re_sweep::run_grid(
        &grid,
        &SweepOptions {
            group_renders: false,
            ..opts()
        },
    )
    .expect("per-cell");
    assert_eq!(grouped.len(), 4);
    for (a, b) in grouped.iter().zip(&per_cell) {
        assert_eq!(a.report, b.report, "cell {}", a.cell.id);
    }
}

#[test]
fn memo_axis_appears_in_artifacts_only_when_swept() {
    let grid = base_grid().with_axis(axis::MEMO_KB, vec![4, 16]);
    let outcomes = re_sweep::run_grid(&grid, &opts()).expect("sweep");
    let records: Vec<CellRecord> = outcomes
        .iter()
        .map(|o| CellRecord::from_run(&o.cell, &o.report))
        .collect();

    // CSV: a memo_kb column, in registry position.
    let csv = re_sweep::render_csv(&records);
    let header = csv.lines().next().unwrap();
    assert!(
        header.contains("sig_compare_cycles,memo_kb,frames"),
        "{header}"
    );

    // Report: a marginal over memo_kb.
    let report = re_sweep::render_report(&records);
    assert!(report.contains("marginal over `memo_kb`"), "{report}");

    // Label: the mk segment, only for the swept grid.
    assert!(outcomes[0].cell.label().ends_with("mk4"));
    assert!(base_grid().cells()[0].label().ends_with("sc4"));

    // JSON: the axis key round-trips.
    let json = records[0].to_json().to_string();
    assert!(json.contains("\"memo_kb\":4"), "{json}");
}
