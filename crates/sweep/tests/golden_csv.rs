//! Golden-CSV migration guard.
//!
//! `fixtures/golden_small.csv` was produced by the pre-registry
//! (hand-plumbed) sweep implementation over a small two-axis grid. The
//! registry-driven pipeline must reproduce it **byte for byte**: same
//! header, same column order, same value formatting, same float rendering.
//! This is the in-process twin of CI's golden-CSV smoke (which drives the
//! `sweep` binary against the same fixture) and the guard for the
//! "existing grids keep byte-identical `results.csv`" contract whenever a
//! new axis is registered.

use re_sweep::{axis, CellRecord, ExperimentGrid, SweepOptions};

const GOLDEN: &str = include_str!("fixtures/golden_small.csv");

/// The grid the fixture was generated from:
/// `--scenes ccs,tib --frames 3 --width 128 --height 64
///  --sig-bits 16,32 --distances 1,2`.
fn golden_grid() -> ExperimentGrid {
    let mut g = ExperimentGrid::default()
        .with_scenes(&["ccs", "tib"])
        .with_axis(axis::SIG_BITS, vec![16, 32])
        .with_axis(axis::COMPARE_DISTANCE, vec![1, 2]);
    g.frames = 3;
    g.width = 128;
    g.height = 64;
    g
}

#[test]
fn registry_pipeline_reproduces_the_pre_registry_csv_byte_for_byte() {
    let opts = SweepOptions {
        workers: 2,
        quiet: true,
        ..SweepOptions::default()
    };
    let outcomes = re_sweep::run_grid(&golden_grid(), &opts).expect("sweep");
    let records: Vec<CellRecord> = outcomes
        .iter()
        .map(|o| CellRecord::from_run(&o.cell, &o.report))
        .collect();
    let csv = re_sweep::render_csv(&records);
    assert_eq!(
        csv, GOLDEN,
        "results.csv for a pre-registry grid must stay byte-identical"
    );
}

#[test]
fn decoded_render_logs_reproduce_the_golden_csv_byte_for_byte() {
    // Two passes over a `--log-dir`: the first renders and persists one
    // `.relog` per render key, the second evaluates entirely from the
    // decoded artifacts. Both must match the golden fixture exactly —
    // the serialization round-trip may not perturb a single output byte.
    let dir = std::env::temp_dir().join(format!("re_sweep_goldlog_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions {
        workers: 2,
        quiet: true,
        log_dir: Some(dir.clone()),
        ..SweepOptions::default()
    };
    let csv_of = |outcomes: &[re_sweep::CellOutcome]| {
        let records: Vec<CellRecord> = outcomes
            .iter()
            .map(|o| CellRecord::from_run(&o.cell, &o.report))
            .collect();
        re_sweep::render_csv(&records)
    };
    let cold = re_sweep::run_grid(&golden_grid(), &opts).expect("cold sweep");
    assert_eq!(
        csv_of(&cold),
        GOLDEN,
        "cold log-dir run matches the fixture"
    );
    let warm = re_sweep::run_grid(&golden_grid(), &opts).expect("warm sweep");
    assert_eq!(
        csv_of(&warm),
        GOLDEN,
        "a sweep evaluated from decoded .relog artifacts must stay byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
