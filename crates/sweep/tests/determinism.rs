//! The sweep subsystem's determinism contract (ISSUE acceptance criteria):
//!
//! * the same grid run with 1 worker and with N workers produces
//!   byte-identical CSV output;
//! * a run killed partway and resumed produces output byte-identical to a
//!   fresh uninterrupted run.

use re_sweep::{axis, CellRecord, ExperimentGrid, ResultStore, SweepOptions};

fn grid() -> ExperimentGrid {
    let mut g = ExperimentGrid::default()
        .with_scenes(&["ccs", "abi", "ter"])
        .with_axis(axis::TILE_SIZE, vec![8, 16])
        .with_axis(axis::SIG_BITS, vec![16, 32])
        .with_axis(axis::COMPARE_DISTANCE, vec![1, 2]);
    g.frames = 4;
    g.width = 160;
    g.height = 96;
    g
}

fn opts(workers: usize) -> SweepOptions {
    SweepOptions {
        workers,
        quiet: true,
        ..SweepOptions::default()
    }
}

fn csv_of_run(workers: usize) -> String {
    let outcomes = re_sweep::run_grid(&grid(), &opts(workers)).expect("sweep");
    let records: Vec<CellRecord> = outcomes
        .iter()
        .map(|o| CellRecord::from_run(&o.cell, &o.report))
        .collect();
    re_sweep::render_csv(&records)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("re_sweep_det_{tag}_{}", std::process::id()))
}

#[test]
fn one_worker_and_many_workers_emit_identical_csv() {
    let serial = csv_of_run(1);
    let parallel = csv_of_run(4);
    assert_eq!(serial, parallel, "CSV must not depend on worker count");
    // 3 scenes × 2 tile sizes × 2 signature widths × 2 distances + header.
    assert_eq!(serial.lines().count(), 24 + 1);
}

#[test]
fn killed_and_resumed_run_matches_a_fresh_run() {
    let g = grid();

    // Fresh, uninterrupted run.
    let fresh_dir = temp_dir("fresh");
    let _ = std::fs::remove_dir_all(&fresh_dir);
    let fresh = re_sweep::run_grid_with_store(&g, &opts(2), &fresh_dir).expect("fresh run");
    let fresh_csv = std::fs::read_to_string(&fresh.csv_path).expect("fresh csv");

    // "Killed" run: a store where only an arbitrary prefix-and-stripe of
    // cells was committed before death (no results.csv yet).
    let resumed_dir = temp_dir("resumed");
    let _ = std::fs::remove_dir_all(&resumed_dir);
    {
        let (store, existing) = ResultStore::open(&resumed_dir, &g).expect("open");
        assert!(existing.is_empty());
        for rec in fresh.records.iter().filter(|r| r.id < 5 || r.id % 3 == 0) {
            store.record(rec).expect("record");
        }
    }

    let resumed = re_sweep::run_grid_with_store(&g, &opts(3), &resumed_dir).expect("resume");
    assert!(
        resumed.resumed > 0,
        "some cells must have been picked up from the store"
    );
    assert!(resumed.ran > 0, "some cells must have actually re-run");
    assert_eq!(resumed.resumed + resumed.ran, g.cell_count());

    let resumed_csv = std::fs::read_to_string(&resumed.csv_path).expect("resumed csv");
    assert_eq!(
        resumed_csv, fresh_csv,
        "resume must be invisible in the output"
    );

    let _ = std::fs::remove_dir_all(&fresh_dir);
    let _ = std::fs::remove_dir_all(&resumed_dir);
}

#[test]
fn records_roundtrip_through_the_store_bit_for_bit() {
    let mut g = ExperimentGrid::default()
        .with_scenes(&["tib"])
        .with_axis(axis::SIG_BITS, vec![8, 32]);
    g.frames = 3;
    g.width = 128;
    g.height = 64;
    let dir = temp_dir("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let first = re_sweep::run_grid_with_store(&g, &opts(1), &dir).expect("run");
    let (_store, reloaded) = ResultStore::open(&dir, &g).expect("reopen");
    assert_eq!(
        reloaded, first.records,
        "store parse must reproduce records exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
