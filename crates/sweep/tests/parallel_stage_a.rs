//! Determinism and raster-accounting contract of parallel Stage A and
//! compressed render logs (ISSUE acceptance criteria):
//!
//! * the same grid run under every `--render-workers` × `--relog-compress`
//!   combination produces a byte-identical `results.csv`;
//! * frame chunking and band parallelism never change the number of
//!   raster invocations — each render key still rasterizes exactly
//!   frames × tiles, regardless of how the work was split;
//! * compressed `.relog` artifacts are strictly smaller than stored ones
//!   and replay raster-free with identical results.
//!
//! The raster counter is process-global, so this file holds a single test
//! (see `render_once.rs` for the same convention).

use re_sweep::{axis, ExperimentGrid, SweepOptions};

#[test]
fn render_worker_and_compression_matrix_is_byte_identical_and_raster_exact() {
    let mut grid = ExperimentGrid::default()
        .with_scenes(&["ccs", "tib"])
        .with_axis(axis::SIG_BITS, vec![16, 32])
        .with_axis(axis::COMPARE_DISTANCE, vec![1, 2]);
    grid.frames = 6;
    grid.width = 128;
    grid.height = 64;
    let tile_count = (128 / 16) * (64 / 16); // default 16px tiles, 32 tiles
    let per_render = grid.frames as u64 * tile_count;
    let render_keys = 2u64; // scene is the only render axis

    let base = std::env::temp_dir().join(format!("re_par_stage_a_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let opts = |render_workers: usize, relog_compress: bool| SweepOptions {
        workers: 4,
        render_workers,
        relog_compress,
        quiet: true,
        trace_dir: Some(base.join("traces")),
        log_dir: Some(base.join(format!("logs-rw{render_workers}-c{relog_compress}"))),
        ..SweepOptions::default()
    };

    // The RE_SWEEP_WORKERS={1,4} × --relog-compress={on,off} matrix: every
    // combination renders each key exactly once (chunking and banding are
    // raster-exact) and produces the identical CSV.
    let mut csvs = Vec::new();
    for (rw, compress) in [(1, false), (4, false), (1, true), (4, true)] {
        let store = base.join(format!("store-rw{rw}-c{compress}"));
        let before = re_gpu::raster_invocations();
        let summary =
            re_sweep::run_grid_with_store(&grid, &opts(rw, compress), &store).expect("sweep");
        let rasters = re_gpu::raster_invocations() - before;
        assert_eq!(
            rasters,
            render_keys * per_render,
            "render_workers={rw} compress={compress}: parallel Stage A must \
             rasterize each key exactly once"
        );
        assert_eq!(summary.ran, grid.cell_count());
        csvs.push(std::fs::read_to_string(&summary.csv_path).expect("csv"));
    }
    for csv in &csvs[1..] {
        assert_eq!(
            csv, &csvs[0],
            "results.csv must not depend on render workers or compression"
        );
    }

    // Compressed artifacts carry the same keys in strictly fewer bytes.
    let dir_sizes = |dir: &std::path::Path| -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = std::fs::read_dir(dir)
            .expect("log dir")
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    e.metadata().unwrap().len(),
                )
            })
            .filter(|(name, _)| name.ends_with(".relog"))
            .collect();
        v.sort();
        v
    };
    let stored = dir_sizes(&base.join("logs-rw4-cfalse"));
    let packed = dir_sizes(&base.join("logs-rw4-ctrue"));
    assert_eq!(stored.len(), render_keys as usize);
    assert_eq!(packed.len(), render_keys as usize);
    for ((name_s, size_s), (name_p, size_p)) in stored.iter().zip(&packed) {
        assert_eq!(name_s, name_p, "same cache keys under both framings");
        assert!(
            size_p < size_s,
            "{name_p}: compressed ({size_p} B) must beat stored ({size_s} B)"
        );
    }

    // Warm compressed cache: zero raster invocations, identical results.
    let before = re_gpu::raster_invocations();
    let warm = re_sweep::run_grid(&grid, &opts(4, true)).expect("warm sweep");
    assert_eq!(
        re_gpu::raster_invocations() - before,
        0,
        "a warm compressed cache must replay raster-free"
    );
    let records: Vec<re_sweep::CellRecord> = warm
        .iter()
        .map(|o| re_sweep::CellRecord::from_run(&o.cell, &o.report))
        .collect();
    assert_eq!(re_sweep::render_csv(&records), csvs[0]);

    let _ = std::fs::remove_dir_all(&base);
}
