//! Old-store compatibility pin.
//!
//! `fixtures/legacy_store/` is a complete result store written by the
//! pre-registry sweep implementation (grid: `ccs`, 2 frames, 128×64,
//! `--sig-bits 16,32`). Its records predate the `memo_kb` axis and the
//! memo metrics. The registry-driven store must:
//!
//! * parse every record, defaulting the axes that did not exist yet;
//! * accept the store for resuming (same spec string → same fingerprint,
//!   because new axes at their default contribute no spec line);
//! * regenerate a `results.csv` byte-identical to the one the old
//!   implementation wrote.

use std::path::{Path, PathBuf};

use re_sweep::{axis, ExperimentGrid, SweepOptions};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/legacy_store")
}

/// The grid the fixture store was created for.
fn fixture_grid() -> ExperimentGrid {
    let mut g = ExperimentGrid::default()
        .with_scenes(&["ccs"])
        .with_axis(axis::SIG_BITS, vec![16, 32]);
    g.frames = 2;
    g.width = 128;
    g.height = 64;
    g
}

/// Copies the read-only fixture into a scratch directory (resuming writes
/// `results.csv` into the store).
fn scratch_copy(tag: &str) -> PathBuf {
    let dst = std::env::temp_dir().join(format!("re_sweep_legacy_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    std::fs::create_dir_all(dst.join("cells")).expect("mkdir");
    std::fs::copy(fixture_dir().join("grid.json"), dst.join("grid.json")).expect("copy");
    for entry in std::fs::read_dir(fixture_dir().join("cells")).expect("cells") {
        let p = entry.expect("entry").path();
        std::fs::copy(&p, dst.join("cells").join(p.file_name().unwrap())).expect("copy cell");
    }
    dst
}

#[test]
fn pre_registry_records_parse_with_defaulted_axes() {
    let records = re_sweep::read_records(fixture_dir()).expect("read legacy store");
    assert_eq!(records.len(), 2);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.id, i);
        assert_eq!(r.scene(), "ccs");
        // Axes absent from the old records resolve to registry defaults.
        assert_eq!(
            r.point.get(axis::MEMO_KB),
            re_sweep::AXES[axis::MEMO_KB].default
        );
        assert_eq!(r.point.sig_compare_cycles(), 4);
        assert_eq!(r.memo_fragments_shaded, 0);
    }
    assert_eq!(records[0].point.sig_bits(), 16);
    assert_eq!(records[1].point.sig_bits(), 32);
}

#[test]
fn pre_registry_store_resumes_and_regenerates_identical_csv() {
    let dir = scratch_copy("resume");
    let grid = fixture_grid();

    // Fingerprint compatibility: the store opens for this grid at all.
    let summary = re_sweep::run_grid_with_store(
        &grid,
        &SweepOptions {
            workers: 1,
            quiet: true,
            ..SweepOptions::default()
        },
        &dir,
    )
    .expect("resume legacy store");
    assert_eq!(summary.resumed, 2, "every legacy cell must be picked up");
    assert_eq!(summary.ran, 0);

    let regenerated = std::fs::read_to_string(summary.csv_path).expect("csv");
    let golden = std::fs::read_to_string(fixture_dir().join("results.csv")).expect("fixture csv");
    assert_eq!(
        regenerated, golden,
        "legacy CSV must be reproduced byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweeping_a_new_axis_is_a_different_grid_for_the_same_store() {
    // A grid that actually explores memo_kb has a different spec line →
    // different fingerprint → the legacy store must refuse to resume it
    // rather than silently mixing results.
    let dir = scratch_copy("mismatch");
    let grid = fixture_grid().with_axis(axis::MEMO_KB, vec![4, 16]);
    let err = re_sweep::ResultStore::open(&dir, &grid).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(&dir);
}
