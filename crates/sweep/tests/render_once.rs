//! The render-once contract of sweep grouping — and of sharding.
//!
//! With render grouping enabled, a sweep over evaluation-only axes must
//! rasterize each (scene, tile size, binning) render key **exactly once**
//! — asserted here via `re_gpu`'s process-wide raster-invocation counter —
//! while producing a `results.csv` byte-identical to the per-cell-render
//! baseline. Sharding partitions the plan *by render key*, so each shard
//! must rasterize exactly its own keys once and nothing else.
//!
//! The counter is process-global, so this file holds a single test: other
//! tests rasterizing concurrently in the same binary would pollute the
//! deltas.

use re_sweep::{axis, render_csv, CellRecord, ExperimentGrid, SweepOptions, SweepPlan};

#[test]
fn grouped_sweep_rasterizes_each_render_key_exactly_once() {
    // 2 scenes × (2 sig_bits × 2 distances × 2 sig-compare costs × 2 memo
    // capacities) = 32 cells, but only 2 render keys: every axis except
    // the scene is evaluation-side.
    let mut grid = ExperimentGrid::default()
        .with_scenes(&["ccs", "tib"])
        .with_axis(axis::SIG_BITS, vec![16, 32])
        .with_axis(axis::COMPARE_DISTANCE, vec![1, 2])
        .with_axis(axis::SIG_COMPARE_CYCLES, vec![2, 4])
        .with_axis(axis::MEMO_KB, vec![4, 16]);
    grid.frames = 3;
    grid.width = 128;
    grid.height = 64;
    let cells = grid.cell_count();
    assert_eq!(cells, 32);
    let tile_count = (128 / 16) * (64 / 16); // 32 tiles per frame
    let per_render = grid.frames as u64 * tile_count;

    // Trace capture rasterizes nothing (geometry-only command capture), but
    // run it outside the measured windows anyway so both paths start from
    // the same in-memory traces via the disk cache.
    let trace_dir = std::env::temp_dir().join(format!("re_render_once_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&trace_dir);
    let opts = |group_renders| SweepOptions {
        workers: 2,
        quiet: true,
        trace_dir: Some(trace_dir.clone()),
        group_renders,
        ..SweepOptions::default()
    };

    // Grouped: exactly one Stage A render per render key.
    let before = re_gpu::raster_invocations();
    let grouped = re_sweep::run_grid(&grid, &opts(true)).expect("grouped sweep");
    let grouped_rasters = re_gpu::raster_invocations() - before;
    assert_eq!(
        grouped_rasters,
        2 * per_render,
        "grouping must rasterize each of the 2 render keys exactly once"
    );

    // Per-cell baseline: one render per cell.
    let before = re_gpu::raster_invocations();
    let per_cell = re_sweep::run_grid(&grid, &opts(false)).expect("per-cell sweep");
    let per_cell_rasters = re_gpu::raster_invocations() - before;
    assert_eq!(per_cell_rasters, cells as u64 * per_render);

    // And the results — down to the rendered CSV — are byte-identical.
    let csv_of = |outcomes: &[re_sweep::CellOutcome]| {
        let records: Vec<CellRecord> = outcomes
            .iter()
            .map(|o| CellRecord::from_run(&o.cell, &o.report))
            .collect();
        render_csv(&records)
    };
    assert_eq!(csv_of(&grouped), csv_of(&per_cell));
    for (a, b) in grouped.iter().zip(&per_cell) {
        assert_eq!(a.report, b.report, "cell {}", a.cell.id);
    }

    // Sharding by render key: each of two shards rasterizes exactly its
    // own keys once (here: one key each), and together they cover the
    // grid with the same per-cell reports as the unsharded run.
    let plan = SweepPlan::compile(&grid);
    assert_eq!(plan.render_job_count(), 2);
    let mut shard_outcomes = Vec::new();
    for k in 0..2 {
        let shard = plan.shard(k, 2).expect("shard");
        let before = re_gpu::raster_invocations();
        let outcomes = re_sweep::run_plan(&shard, &opts(true)).expect("shard sweep");
        let shard_rasters = re_gpu::raster_invocations() - before;
        assert_eq!(
            shard_rasters,
            shard.render_job_count() as u64 * per_render,
            "shard {k} must rasterize exactly its own render keys once"
        );
        assert_eq!(outcomes.len(), shard.cell_count());
        shard_outcomes.extend(outcomes);
    }
    shard_outcomes.sort_by_key(|o| o.cell.id);
    assert_eq!(shard_outcomes.len(), cells);
    for (a, b) in shard_outcomes.iter().zip(&grouped) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.report, b.report, "cell {}", a.cell.id);
    }

    // ---- render-log cache: a warm --log-dir skips Stage A entirely ----
    let log_dir = trace_dir.join("logs");
    let with_logs = |group_renders| SweepOptions {
        log_dir: Some(log_dir.clone()),
        ..opts(group_renders)
    };

    // Cold pass: still one raster per key, and the artifacts get written.
    let before = re_gpu::raster_invocations();
    let cold = re_sweep::run_grid(&grid, &with_logs(true)).expect("cold log-dir sweep");
    assert_eq!(re_gpu::raster_invocations() - before, 2 * per_render);
    assert_eq!(
        std::fs::read_dir(&log_dir).unwrap().count(),
        2,
        "one .relog per render key"
    );

    // Warm pass: **zero** raster invocations — every key replays its
    // cached log — and the results are byte-identical to the grouped run.
    let before = re_gpu::raster_invocations();
    let warm = re_sweep::run_grid(&grid, &with_logs(true)).expect("warm log-dir sweep");
    assert_eq!(
        re_gpu::raster_invocations() - before,
        0,
        "a warm render-log cache must not rasterize anything"
    );
    assert_eq!(csv_of(&warm), csv_of(&grouped));
    for ((a, b), c) in warm.iter().zip(&cold).zip(&grouped) {
        assert_eq!(a.report, b.report, "cell {}", a.cell.id);
        assert_eq!(a.report, c.report, "cell {}", a.cell.id);
    }

    // A warm store-backed resume is raster-free too: fresh store, cached
    // logs — every cell "runs" but Stage A never does.
    let store_dir = trace_dir.join("store");
    let before = re_gpu::raster_invocations();
    let summary =
        re_sweep::run_grid_with_store(&grid, &with_logs(true), &store_dir).expect("store run");
    assert_eq!(summary.ran, cells);
    assert_eq!(re_gpu::raster_invocations() - before, 0);
    assert_eq!(
        std::fs::read_to_string(&summary.csv_path).unwrap(),
        csv_of(&grouped)
    );

    // Corrupting one artifact silently re-renders exactly that key (and
    // repairs the cache); the other key still replays from disk.
    let corrupt = std::fs::read_dir(&log_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.file_name().unwrap().to_str().unwrap().starts_with("ccs"))
        .expect("ccs artifact");
    let mut bytes = std::fs::read(&corrupt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&corrupt, &bytes).unwrap();
    let before = re_gpu::raster_invocations();
    let repaired = re_sweep::run_grid(&grid, &with_logs(true)).expect("repair sweep");
    assert_eq!(
        re_gpu::raster_invocations() - before,
        per_render,
        "only the corrupt key re-renders"
    );
    assert_eq!(csv_of(&repaired), csv_of(&grouped));
    let before = re_gpu::raster_invocations();
    let _ = re_sweep::run_grid(&grid, &with_logs(true)).expect("rewarmed sweep");
    assert_eq!(
        re_gpu::raster_invocations() - before,
        0,
        "the re-render must repair the cache"
    );

    // The per-cell baseline ignores the cache by design: it measures the
    // full monolithic pipeline.
    let before = re_gpu::raster_invocations();
    let per_cell_cached = re_sweep::run_grid(&grid, &with_logs(false)).expect("per-cell sweep");
    assert_eq!(
        re_gpu::raster_invocations() - before,
        cells as u64 * per_render
    );
    assert_eq!(csv_of(&per_cell_cached), csv_of(&grouped));

    let _ = std::fs::remove_dir_all(&trace_dir);
}
