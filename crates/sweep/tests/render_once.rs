//! The render-once contract of sweep grouping.
//!
//! With render grouping enabled, a sweep over evaluation-only axes must
//! rasterize each (scene, tile size, binning) render key **exactly once**
//! — asserted here via `re_gpu`'s process-wide raster-invocation counter —
//! while producing a `results.csv` byte-identical to the per-cell-render
//! baseline.
//!
//! The counter is process-global, so this file holds a single test: other
//! tests rasterizing concurrently in the same binary would pollute the
//! deltas.

use re_sweep::{axis, render_csv, CellRecord, ExperimentGrid, SweepOptions};

#[test]
fn grouped_sweep_rasterizes_each_render_key_exactly_once() {
    // 2 scenes × (2 sig_bits × 2 distances × 2 sig-compare costs × 2 memo
    // capacities) = 32 cells, but only 2 render keys: every axis except
    // the scene is evaluation-side.
    let mut grid = ExperimentGrid::default()
        .with_scenes(&["ccs", "tib"])
        .with_axis(axis::SIG_BITS, vec![16, 32])
        .with_axis(axis::COMPARE_DISTANCE, vec![1, 2])
        .with_axis(axis::SIG_COMPARE_CYCLES, vec![2, 4])
        .with_axis(axis::MEMO_KB, vec![4, 16]);
    grid.frames = 3;
    grid.width = 128;
    grid.height = 64;
    let cells = grid.cell_count();
    assert_eq!(cells, 32);
    let tile_count = (128 / 16) * (64 / 16); // 32 tiles per frame
    let per_render = grid.frames as u64 * tile_count;

    // Trace capture rasterizes nothing (geometry-only command capture), but
    // run it outside the measured windows anyway so both paths start from
    // the same in-memory traces via the disk cache.
    let trace_dir = std::env::temp_dir().join(format!("re_render_once_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&trace_dir);
    let opts = |group_renders| SweepOptions {
        workers: 2,
        quiet: true,
        trace_dir: Some(trace_dir.clone()),
        group_renders,
    };

    // Grouped: exactly one Stage A render per render key.
    let before = re_gpu::raster_invocations();
    let grouped = re_sweep::run_grid(&grid, &opts(true)).expect("grouped sweep");
    let grouped_rasters = re_gpu::raster_invocations() - before;
    assert_eq!(
        grouped_rasters,
        2 * per_render,
        "grouping must rasterize each of the 2 render keys exactly once"
    );

    // Per-cell baseline: one render per cell.
    let before = re_gpu::raster_invocations();
    let per_cell = re_sweep::run_grid(&grid, &opts(false)).expect("per-cell sweep");
    let per_cell_rasters = re_gpu::raster_invocations() - before;
    assert_eq!(per_cell_rasters, cells as u64 * per_render);

    // And the results — down to the rendered CSV — are byte-identical.
    let csv_of = |outcomes: &[re_sweep::CellOutcome]| {
        let records: Vec<CellRecord> = outcomes
            .iter()
            .map(|o| CellRecord::from_run(&o.cell, &o.report))
            .collect();
        render_csv(&records)
    };
    assert_eq!(csv_of(&grouped), csv_of(&per_cell));
    for (a, b) in grouped.iter().zip(&per_cell) {
        assert_eq!(a.report, b.report, "cell {}", a.cell.id);
    }

    let _ = std::fs::remove_dir_all(&trace_dir);
}
