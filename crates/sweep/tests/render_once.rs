//! The render-once contract of sweep grouping — and of sharding.
//!
//! With render grouping enabled, a sweep over evaluation-only axes must
//! rasterize each (scene, tile size, binning) render key **exactly once**
//! — asserted here via `re_gpu`'s process-wide raster-invocation counter —
//! while producing a `results.csv` byte-identical to the per-cell-render
//! baseline. Sharding partitions the plan *by render key*, so each shard
//! must rasterize exactly its own keys once and nothing else.
//!
//! The counter is process-global, so this file holds a single test: other
//! tests rasterizing concurrently in the same binary would pollute the
//! deltas.

use re_sweep::{axis, render_csv, CellRecord, ExperimentGrid, SweepOptions, SweepPlan};

#[test]
fn grouped_sweep_rasterizes_each_render_key_exactly_once() {
    // 2 scenes × (2 sig_bits × 2 distances × 2 sig-compare costs × 2 memo
    // capacities) = 32 cells, but only 2 render keys: every axis except
    // the scene is evaluation-side.
    let mut grid = ExperimentGrid::default()
        .with_scenes(&["ccs", "tib"])
        .with_axis(axis::SIG_BITS, vec![16, 32])
        .with_axis(axis::COMPARE_DISTANCE, vec![1, 2])
        .with_axis(axis::SIG_COMPARE_CYCLES, vec![2, 4])
        .with_axis(axis::MEMO_KB, vec![4, 16]);
    grid.frames = 3;
    grid.width = 128;
    grid.height = 64;
    let cells = grid.cell_count();
    assert_eq!(cells, 32);
    let tile_count = (128 / 16) * (64 / 16); // 32 tiles per frame
    let per_render = grid.frames as u64 * tile_count;

    // Trace capture rasterizes nothing (geometry-only command capture), but
    // run it outside the measured windows anyway so both paths start from
    // the same in-memory traces via the disk cache.
    let trace_dir = std::env::temp_dir().join(format!("re_render_once_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&trace_dir);
    let opts = |group_renders| SweepOptions {
        workers: 2,
        quiet: true,
        trace_dir: Some(trace_dir.clone()),
        group_renders,
        ..SweepOptions::default()
    };

    // Grouped: exactly one Stage A render per render key.
    let before = re_gpu::raster_invocations();
    let grouped = re_sweep::run_grid(&grid, &opts(true)).expect("grouped sweep");
    let grouped_rasters = re_gpu::raster_invocations() - before;
    assert_eq!(
        grouped_rasters,
        2 * per_render,
        "grouping must rasterize each of the 2 render keys exactly once"
    );

    // Per-cell baseline: one render per cell.
    let before = re_gpu::raster_invocations();
    let per_cell = re_sweep::run_grid(&grid, &opts(false)).expect("per-cell sweep");
    let per_cell_rasters = re_gpu::raster_invocations() - before;
    assert_eq!(per_cell_rasters, cells as u64 * per_render);

    // And the results — down to the rendered CSV — are byte-identical.
    let csv_of = |outcomes: &[re_sweep::CellOutcome]| {
        let records: Vec<CellRecord> = outcomes
            .iter()
            .map(|o| CellRecord::from_run(&o.cell, &o.report))
            .collect();
        render_csv(&records)
    };
    assert_eq!(csv_of(&grouped), csv_of(&per_cell));
    for (a, b) in grouped.iter().zip(&per_cell) {
        assert_eq!(a.report, b.report, "cell {}", a.cell.id);
    }

    // Sharding by render key: each of two shards rasterizes exactly its
    // own keys once (here: one key each), and together they cover the
    // grid with the same per-cell reports as the unsharded run.
    let plan = SweepPlan::compile(&grid);
    assert_eq!(plan.render_job_count(), 2);
    let mut shard_outcomes = Vec::new();
    for k in 0..2 {
        let shard = plan.shard(k, 2).expect("shard");
        let before = re_gpu::raster_invocations();
        let outcomes = re_sweep::run_plan(&shard, &opts(true)).expect("shard sweep");
        let shard_rasters = re_gpu::raster_invocations() - before;
        assert_eq!(
            shard_rasters,
            shard.render_job_count() as u64 * per_render,
            "shard {k} must rasterize exactly its own render keys once"
        );
        assert_eq!(outcomes.len(), shard.cell_count());
        shard_outcomes.extend(outcomes);
    }
    shard_outcomes.sort_by_key(|o| o.cell.id);
    assert_eq!(shard_outcomes.len(), cells);
    for (a, b) in shard_outcomes.iter().zip(&grouped) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.report, b.report, "cell {}", a.cell.id);
    }

    let _ = std::fs::remove_dir_all(&trace_dir);
}
