//! Minimal SIGINT/SIGTERM handling: a handler that sets a process-global
//! flag, installed through the raw `signal(2)` libc symbol so the
//! workspace stays dependency-free.
//!
//! The handler does the only thing that is async-signal-safe here —
//! store to an atomic — and everything stateful (flushing the run log
//! trailer, dumping metrics, draining the daemon queue) happens on
//! ordinary threads that poll [`requested`] or the [`install`]ed flag.
//! A second signal while the graceful path runs falls back to the
//! default disposition, so a stuck shutdown can still be interrupted.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[allow(unsafe_code)]
mod raw {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::REQUESTED.store(true, Ordering::Release);
        // Restore the default disposition: a repeated ^C kills a shutdown
        // that is itself wedged.
        unsafe {
            signal(SIGINT, SIG_DFL);
            signal(SIGTERM, SIG_DFL);
        }
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

/// Installs the SIGINT/SIGTERM handler (idempotent) and returns the
/// "shutdown requested" flag it sets.
pub fn install() -> &'static AtomicBool {
    raw::install();
    &REQUESTED
}

/// Whether a SIGINT/SIGTERM has been received.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Acquire)
}
