//! The sweep daemon: a long-running process that serves experiment-grid
//! submissions over a local TCP socket, amortizing the `.retrace`/`.relog`
//! artifact caches — and renders currently in flight — across requests.
//!
//! The one-shot `sweep run` pays its Stage A cost every invocation unless
//! a warm `--log-dir` happens to cover it. `sweep serve` keeps that
//! warmth in a live process: every submission compiles to a
//! [`re_sweep::SweepPlan`], dedups its render jobs against the shared
//! disk cache **and** against renders other queued submissions are
//! performing right now ([`re_sweep::InFlightRenders`]), and executes on
//! the [`re_sweep::AsyncExecutor`], which overlaps `.relog` replay reads
//! with evaluation. A re-submitted grid costs only Stage B and performs
//! zero raster invocations.
//!
//! * [`proto`] — the line-delimited JSON wire protocol (versioned,
//!   hostile-input hardened; schema in `docs/SERVING.md`);
//! * [`daemon`] — the server: job queue, serial job runner, per-job
//!   stores under one root, graceful drain;
//! * [`client`] — the `sweep client` verbs (`submit`, `status`, `watch`,
//!   `report`, `csv`, `metrics`, `ping`, `shutdown`) and the library
//!   calls (`Client::submit`/`status`/`cells`, [`client::watch_job`])
//!   the `sweep fleet` daemon backend drives;
//! * [`sig`] — SIGINT/SIGTERM to a clean flush, shared with `sweep run`.
//!
//! The `sweep` binary itself lives in `re_fleet` (`crates/fleet`), the
//! top of the crate stack: its one-shot verbs delegate to
//! `re_sweep::cli`, `serve` and `client` come from here, and `fleet`
//! from `re_fleet`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod proto;
pub mod sig;

pub use client::{watch_job, Client, JobSnapshot, SubmitOutcome};
pub use daemon::{Daemon, ServeConfig};
pub use proto::{Request, Response, MAX_LINE, PROTO_VERSION};
