//! The daemon client: `sweep client --addr HOST:PORT <verb> …`.
//!
//! A thin cover over the wire protocol (see [`crate::proto`]): each verb
//! sends one request frame and prints the response. `submit` reuses the
//! `sweep run` flag grammar — everything `re_sweep::cli` accepts for a
//! one-shot run describes the grid here — and `--wait` blocks until the
//! daemon finishes the job, exiting nonzero if it failed.

use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use re_sweep::json::Json;

use crate::proto::{read_frame, write_frame, Request, Response};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends `request` and reads the single response frame.
    ///
    /// # Errors
    /// I/O failures, a closed connection, or an unparsable frame.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.to_json())?;
        self.read_response()
    }

    /// Reads the next response frame (for `watch` streams).
    ///
    /// # Errors
    /// I/O failures, a closed connection, or an unparsable frame.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let line = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })?;
        Response::parse_line(&line)
            .map(Ok)
            .unwrap_or_else(|e| Err(io::Error::new(io::ErrorKind::InvalidData, e)))
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("sweep client: {msg}");
    ExitCode::from(2)
}

/// Runs the `sweep client` subcommand. `args` is everything after the
/// literal `client`.
pub fn main(args: &[String]) -> ExitCode {
    let mut addr = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--addr" {
            match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return fail("--addr needs a value"),
            }
        } else {
            rest.push(a.clone());
        }
    }
    let Some(addr) = addr else {
        return fail("missing --addr HOST:PORT (where is the daemon?)");
    };
    let Some((verb, verb_args)) = rest.split_first() else {
        return fail(
            "missing verb: submit | status | watch | report | csv | metrics | ping | shutdown",
        );
    };

    let job_arg = || -> Result<u64, String> {
        match verb_args {
            [flag, n] if flag == "--job" => n
                .parse()
                .map_err(|_| format!("--job: `{n}` is not a job id")),
            _ => Err(format!("{verb} needs exactly `--job N`")),
        }
    };

    match verb.as_str() {
        "submit" => submit(&addr, verb_args),
        "watch" => match job_arg() {
            Ok(job) => watch(&addr, job),
            Err(e) => fail(&e),
        },
        "status" | "report" | "csv" => {
            let job = match job_arg() {
                Ok(j) => j,
                Err(e) => return fail(&e),
            };
            let request = match verb.as_str() {
                "status" => Request::Status { job },
                "report" => Request::Report { job },
                _ => Request::Csv { job },
            };
            one_shot(&addr, &request)
        }
        "metrics" => one_shot(&addr, &Request::Metrics),
        "ping" => one_shot(&addr, &Request::Ping),
        "shutdown" => one_shot(&addr, &Request::Shutdown),
        other => fail(&format!("unknown verb `{other}`")),
    }
}

/// Sends one request; prints string payloads raw (so `csv`/`report`
/// pipe cleanly) and everything else as the JSON payload object.
fn one_shot(addr: &str, request: &Request) -> ExitCode {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect {addr}: {e}")),
    };
    match client.request(request) {
        Ok(Response::Ok(fields)) => {
            match fields.as_slice() {
                // A single string payload (csv, report) prints verbatim.
                [(_, Json::Str(s))] => print!("{s}"),
                _ => println!("{}", Json::Obj(fields.to_vec())),
            }
            ExitCode::SUCCESS
        }
        Ok(Response::Err(e)) => fail(&e),
        Err(e) => fail(&format!("{}: {e}", request.verb())),
    }
}

fn watch(addr: &str, job: u64) -> ExitCode {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect {addr}: {e}")),
    };
    if let Err(e) = write_frame(&mut client.writer, &Request::Watch { job }.to_json()) {
        return fail(&format!("watch: {e}"));
    }
    loop {
        match client.read_response() {
            Ok(Response::Ok(fields)) => {
                if fields.iter().any(|(k, _)| k == "done") {
                    return ExitCode::SUCCESS;
                }
                if let Some((_, event)) = fields.iter().find(|(k, _)| k == "event") {
                    println!("{event}");
                }
            }
            Ok(Response::Err(e)) => return fail(&e),
            Err(e) => return fail(&format!("watch: {e}")),
        }
    }
}

fn submit(addr: &str, args: &[String]) -> ExitCode {
    let wait = args.iter().any(|a| a == "--wait");
    let run_flags: Vec<String> = args.iter().filter(|a| *a != "--wait").cloned().collect();
    // The submission grid speaks the exact `sweep run` flag grammar.
    let grid = match re_sweep::cli::parse(&run_flags) {
        Ok(re_sweep::cli::Command::Run(run)) => run.grid,
        Ok(_) => return fail("submit takes run flags (axis lists, --frames, …), not a subcommand"),
        Err(e) => return fail(&format!("submit: {e}")),
    };

    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect {addr}: {e}")),
    };
    let response = match client.request(&Request::Submit {
        grid: Box::new(grid),
    }) {
        Ok(r) => r,
        Err(e) => return fail(&format!("submit: {e}")),
    };
    let job = match &response {
        Response::Ok(_) => match response.field("job").and_then(Json::as_u64) {
            Some(j) => j,
            None => return fail("daemon accepted the job but sent no id"),
        },
        Response::Err(e) => return fail(e),
    };
    let cached = response
        .field("cached_jobs")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let renders = response
        .field("render_jobs")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    eprintln!(
        "[sweep client] submitted job {job} ({renders} render jobs, {cached} already cached)"
    );
    if !wait {
        println!("{job}");
        return ExitCode::SUCCESS;
    }

    // Poll until the daemon finishes the job.
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let status = match client.request(&Request::Status { job }) {
            Ok(Response::Ok(fields)) => Response::Ok(fields),
            Ok(Response::Err(e)) => return fail(&e),
            Err(e) => return fail(&format!("status: {e}")),
        };
        match status.field("state").and_then(Json::as_str) {
            Some("done") => {
                let rasters = status.field("rasters").and_then(Json::as_u64).unwrap_or(0);
                // The daemon-side analog of the one-shot CLI's raster
                // line (CI greps for it to pin warm-cache dedup).
                eprintln!("[sweep client] job {job} raster invocations: {rasters}");
                println!("{job}");
                return ExitCode::SUCCESS;
            }
            Some("failed") => {
                let why = status
                    .field("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error");
                return fail(&format!("job {job} failed: {why}"));
            }
            _ => {}
        }
    }
}
