//! The daemon client: `sweep client --addr HOST:PORT <verb> …`, plus the
//! library calls (`submit`/`status`/`cells`/[`watch_job`]) other drivers
//! — the `sweep fleet` daemon backend — build on.
//!
//! A thin cover over the wire protocol (see [`crate::proto`]): each verb
//! sends one request frame and prints the response. `submit` reuses the
//! `sweep run` flag grammar — everything `re_sweep::cli` accepts for a
//! one-shot run describes the grid here (`--shard K/N` included) — and
//! `--wait` blocks until the daemon finishes the job, exiting nonzero if
//! it failed.

use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use re_sweep::json::Json;
use re_sweep::{CellRecord, ExperimentGrid, ShardSpec};

use crate::proto::{read_frame, write_frame, Request, Response};

/// What a successful `submit` returned.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The assigned job id.
    pub job: u64,
    /// Cells the job will run.
    pub cells: u64,
    /// Render jobs the job's plan holds.
    pub render_jobs: u64,
    /// Render jobs a cached `.relog` already satisfies.
    pub cached_jobs: u64,
    /// The grid fingerprint the daemon derived (hex, as on the wire).
    pub fingerprint: String,
}

/// One `status` snapshot of a daemon job.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// `"queued"`, `"running"`, `"done"` or `"failed"`.
    pub state: String,
    /// Cells the job runs in total.
    pub cells: u64,
    /// Cells committed so far (store-resume base included).
    pub done: u64,
    /// Raster invocations the daemon attributed to the job (set once it
    /// finished).
    pub rasters: Option<u64>,
    /// The failure reason, when `state` is `"failed"`.
    pub error: Option<String>,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends `request` and reads the single response frame.
    ///
    /// # Errors
    /// I/O failures, a closed connection, or an unparsable frame.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.to_json())?;
        self.read_response()
    }

    /// Reads the next response frame (for `watch`/`cells` streams).
    ///
    /// # Errors
    /// I/O failures, a closed connection, or an unparsable frame.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let line = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })?;
        Response::parse_line(&line)
            .map(Ok)
            .unwrap_or_else(|e| Err(io::Error::new(io::ErrorKind::InvalidData, e)))
    }

    /// Submits `grid` (optionally one shard of its plan) and returns the
    /// daemon's acceptance.
    ///
    /// # Errors
    /// I/O failures; a daemon error frame (bad grid, bad shard, daemon
    /// draining) surfaces as [`io::ErrorKind::Other`] with the daemon's
    /// message.
    pub fn submit(
        &mut self,
        grid: &ExperimentGrid,
        shard: Option<ShardSpec>,
    ) -> io::Result<SubmitOutcome> {
        let response = self.request(&Request::Submit {
            grid: Box::new(grid.clone()),
            shard,
        })?;
        let num = |k: &str| {
            response.field(k).and_then(Json::as_u64).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("submit response missing `{k}`"),
                )
            })
        };
        match &response {
            Response::Err(e) => Err(io::Error::other(format!("submit: {e}"))),
            Response::Ok(_) => Ok(SubmitOutcome {
                job: num("job")?,
                cells: num("cells")?,
                render_jobs: num("render_jobs")?,
                cached_jobs: num("cached_jobs")?,
                fingerprint: response
                    .field("fingerprint")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
        }
    }

    /// One `status` snapshot of job `job`.
    ///
    /// # Errors
    /// I/O failures; an unknown job surfaces as [`io::ErrorKind::Other`]
    /// with the daemon's message.
    pub fn status(&mut self, job: u64) -> io::Result<JobSnapshot> {
        let response = self.request(&Request::Status { job })?;
        match &response {
            Response::Err(e) => Err(io::Error::other(format!("status: {e}"))),
            Response::Ok(_) => {
                let num = |k: &str| response.field(k).and_then(Json::as_u64);
                Ok(JobSnapshot {
                    state: response
                        .field("state")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    cells: num("cells").unwrap_or(0),
                    done: num("done").unwrap_or(0),
                    rasters: num("rasters"),
                    error: response
                        .field("error")
                        .and_then(Json::as_str)
                        .map(str::to_string),
                })
            }
        }
    }

    /// Fetches a completed job's cell records (the store objects,
    /// streamed one frame each and reassembled here, in cell-id order).
    /// The connection stays frame-aligned and reusable afterwards.
    ///
    /// # Errors
    /// I/O failures; a daemon error frame (unknown or unfinished job) or
    /// an unparsable record surfaces with its message.
    pub fn cells(&mut self, job: u64) -> io::Result<Vec<CellRecord>> {
        write_frame(&mut self.writer, &Request::Cells { job }.to_json())?;
        let mut records = Vec::new();
        loop {
            match self.read_response()? {
                Response::Ok(fields) => {
                    if fields.iter().any(|(k, _)| k == "done") {
                        return Ok(records);
                    }
                    let Some((_, record)) = fields.iter().find(|(k, _)| k == "record") else {
                        continue;
                    };
                    records.push(CellRecord::from_json(record).map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("cells: {e}"))
                    })?);
                }
                Response::Err(e) => return Err(io::Error::other(format!("cells: {e}"))),
            }
        }
    }
}

/// How long [`watch_job`] sleeps between reconnect attempts.
const WATCH_RETRY: Duration = Duration::from_millis(100);

/// Reconnect attempts [`watch_job`] tolerates without a single *new*
/// event before giving up (~60 s of a daemon that accepts connections
/// but never makes progress). Any new event resets the budget.
const WATCH_MAX_QUIET: u32 = 600;

/// Streams job `job`'s events into `sink` until the daemon's `done`
/// trailer — the stream's `run_end` — is seen.
///
/// A quiet EOF is **not** the end of the job: a watcher that connects
/// before the job starts emitting events (or across a daemon blip) just
/// sees its stream close early. This reconnects and resumes instead of
/// exiting; the daemon replays the job's full event buffer to every
/// watcher, so already-delivered events are skipped by count and `sink`
/// sees each event exactly once, in order.
///
/// # Errors
/// A daemon error frame (e.g. no such job) fails immediately;
/// connect/read failures fail only after `WATCH_MAX_QUIET` consecutive
/// attempts without progress.
pub fn watch_job(addr: &str, job: u64, sink: &mut dyn FnMut(&Json)) -> Result<(), String> {
    let mut seen = 0usize;
    let mut quiet = 0u32;
    let mut last_error = "stream stayed quiet".to_string();
    loop {
        let before = seen;
        match watch_attempt(addr, job, &mut seen, sink) {
            Ok(true) => return Ok(()),
            Ok(false) => {}
            Err(WatchFailure::Daemon(e)) => return Err(e),
            Err(WatchFailure::Stream(e)) => last_error = e,
        }
        quiet = if seen > before { 0 } else { quiet + 1 };
        if quiet >= WATCH_MAX_QUIET {
            return Err(format!(
                "watch: no progress after {quiet} attempts (last error: {last_error})"
            ));
        }
        std::thread::sleep(WATCH_RETRY);
    }
}

/// Why one watch connection ended without a `done` trailer.
enum WatchFailure {
    /// The daemon rejected the watch (unknown job) — not retryable.
    Daemon(String),
    /// The connection failed or closed early — reconnect and resume.
    Stream(String),
}

/// One watch connection: delivers events past `*seen` to `sink`,
/// returning `Ok(true)` on the `done` trailer and `Ok(false)` on a quiet
/// EOF (connection closed with the job still going).
fn watch_attempt(
    addr: &str,
    job: u64,
    seen: &mut usize,
    sink: &mut dyn FnMut(&Json),
) -> Result<bool, WatchFailure> {
    let stream = |e: io::Error| WatchFailure::Stream(e.to_string());
    let mut client = Client::connect(addr).map_err(stream)?;
    write_frame(&mut client.writer, &Request::Watch { job }.to_json()).map_err(stream)?;
    // The daemon replays the buffer from the start on every connection;
    // `index` counts this connection's frames so replayed events are
    // delivered to `sink` only once across reconnects.
    let mut index = 0usize;
    loop {
        match client.read_response() {
            Ok(Response::Ok(fields)) => {
                if fields.iter().any(|(k, _)| k == "done") {
                    return Ok(true);
                }
                if let Some((_, event)) = fields.iter().find(|(k, _)| k == "event") {
                    if index >= *seen {
                        sink(event);
                        *seen = index + 1;
                    }
                    index += 1;
                }
            }
            Ok(Response::Err(e)) => return Err(WatchFailure::Daemon(e)),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
            Err(e) => return Err(stream(e)),
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("sweep client: {msg}");
    ExitCode::from(2)
}

/// Runs the `sweep client` subcommand. `args` is everything after the
/// literal `client`.
pub fn main(args: &[String]) -> ExitCode {
    let mut addr = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--addr" {
            match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return fail("--addr needs a value"),
            }
        } else {
            rest.push(a.clone());
        }
    }
    let Some(addr) = addr else {
        return fail("missing --addr HOST:PORT (where is the daemon?)");
    };
    let Some((verb, verb_args)) = rest.split_first() else {
        return fail(
            "missing verb: submit | status | watch | report | csv | metrics | ping | shutdown",
        );
    };

    let job_arg = || -> Result<u64, String> {
        match verb_args {
            [flag, n] if flag == "--job" => n
                .parse()
                .map_err(|_| format!("--job: `{n}` is not a job id")),
            _ => Err(format!("{verb} needs exactly `--job N`")),
        }
    };

    match verb.as_str() {
        "submit" => submit(&addr, verb_args),
        "watch" => match job_arg() {
            Ok(job) => watch(&addr, job),
            Err(e) => fail(&e),
        },
        "status" | "report" | "csv" => {
            let job = match job_arg() {
                Ok(j) => j,
                Err(e) => return fail(&e),
            };
            let request = match verb.as_str() {
                "status" => Request::Status { job },
                "report" => Request::Report { job },
                _ => Request::Csv { job },
            };
            one_shot(&addr, &request)
        }
        "metrics" => one_shot(&addr, &Request::Metrics),
        "ping" => one_shot(&addr, &Request::Ping),
        "shutdown" => one_shot(&addr, &Request::Shutdown),
        other => fail(&format!("unknown verb `{other}`")),
    }
}

/// Sends one request; prints string payloads raw (so `csv`/`report`
/// pipe cleanly) and everything else as the JSON payload object.
fn one_shot(addr: &str, request: &Request) -> ExitCode {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect {addr}: {e}")),
    };
    match client.request(request) {
        Ok(Response::Ok(fields)) => {
            match fields.as_slice() {
                // A single string payload (csv, report) prints verbatim.
                [(_, Json::Str(s))] => print!("{s}"),
                _ => println!("{}", Json::Obj(fields.to_vec())),
            }
            ExitCode::SUCCESS
        }
        Ok(Response::Err(e)) => fail(&e),
        Err(e) => fail(&format!("{}: {e}", request.verb())),
    }
}

fn watch(addr: &str, job: u64) -> ExitCode {
    match watch_job(addr, job, &mut |event| println!("{event}")) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

fn submit(addr: &str, args: &[String]) -> ExitCode {
    let wait = args.iter().any(|a| a == "--wait");
    let run_flags: Vec<String> = args.iter().filter(|a| *a != "--wait").cloned().collect();
    // The submission grid speaks the exact `sweep run` flag grammar —
    // `--shard K/N` travels too, so a daemon can run one shard of a
    // partition.
    let (grid, shard) = match re_sweep::cli::parse(&run_flags) {
        Ok(re_sweep::cli::Command::Run(run)) => (run.grid, run.shard),
        Ok(_) => return fail("submit takes run flags (axis lists, --frames, …), not a subcommand"),
        Err(e) => return fail(&format!("submit: {e}")),
    };

    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return fail(&format!("connect {addr}: {e}")),
    };
    let outcome = match client.submit(&grid, shard) {
        Ok(o) => o,
        Err(e) => return fail(&e.to_string()),
    };
    let job = outcome.job;
    eprintln!(
        "[sweep client] submitted job {job} ({} render jobs, {} already cached)",
        outcome.render_jobs, outcome.cached_jobs
    );
    if !wait {
        println!("{job}");
        return ExitCode::SUCCESS;
    }

    // Poll until the daemon finishes the job.
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let status = match client.request(&Request::Status { job }) {
            Ok(Response::Ok(fields)) => Response::Ok(fields),
            Ok(Response::Err(e)) => return fail(&e),
            Err(e) => return fail(&format!("status: {e}")),
        };
        match status.field("state").and_then(Json::as_str) {
            Some("done") => {
                let rasters = status.field("rasters").and_then(Json::as_u64).unwrap_or(0);
                // The daemon-side analog of the one-shot CLI's raster
                // line (CI greps for it to pin warm-cache dedup).
                eprintln!("[sweep client] job {job} raster invocations: {rasters}");
                println!("{job}");
                return ExitCode::SUCCESS;
            }
            Some("failed") => {
                let why = status
                    .field("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error");
                return fail(&format!("job {job} failed: {why}"));
            }
            _ => {}
        }
    }
}
