//! The `sweep serve` daemon: accept grid submissions on a local TCP
//! socket, queue them as jobs, and run each through the shared-cache
//! [`AsyncExecutor`] pipeline.
//!
//! One daemon process owns one root directory:
//!
//! ```text
//! <root>/cache/          shared .retrace / .relog artifacts (all jobs)
//! <root>/jobs/job-N/     one result store per submission (+ events.jsonl)
//! <root>/metrics.json    registry snapshot, flushed on graceful exit
//! ```
//!
//! Deduplication happens at three layers, so a re-submitted grid costs
//! only Stage B: render keys covered by a cached `.relog` are satisfied
//! at plan time (the executor replays them through its prefetch
//! pipeline); keys being rendered *right now* for another queued job are
//! joined through the shared [`InFlightRenders`] registry; and everything
//! else renders once and persists for the next submission.
//!
//! Jobs run strictly one at a time, in submission order. That keeps the
//! per-job `gpu.raster_invocations` delta exact (the counter is
//! process-global) — which is what lets `status` report "this submission
//! rasterized nothing" and lets tests pin warm-cache dedup to zero.
//!
//! Shutdown (the `shutdown` verb, SIGINT or SIGTERM) is a graceful
//! drain: no new submissions are accepted, every already-accepted job
//! runs to completion, stores and run logs are flushed (each job's
//! `events.jsonl` gets its `run_end` trailer), and the metrics snapshot
//! is written before the process exits.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use re_obs::names;
use re_sweep::json::Json;
use re_sweep::{
    event_json, AsyncExecutor, ExperimentGrid, InFlightRenders, JsonlObserver, MultiObserver,
    RenderLogCache, ShardSpec, SweepEvent, SweepObserver, SweepOptions, SweepPlan, EVENTS_FILE,
};

use crate::proto::{read_frame, write_frame, Request, Response, PROTO_VERSION};

/// How a daemon runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to listen on (e.g. `127.0.0.1:7333`; port 0 picks one).
    pub addr: String,
    /// Root directory for the shared cache and per-job stores.
    pub root: PathBuf,
    /// Worker threads per job (0 = all hardware threads).
    pub workers: usize,
    /// Replay read-ahead window of the executor (see
    /// [`AsyncExecutor::prefetch`]).
    pub prefetch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7333".to_string(),
            root: PathBuf::from("serve-root"),
            workers: 0,
            prefetch: 3,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum JobStatus {
    Queued,
    Running,
    Done,
    Failed(String),
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// A job's event stream, buffered for `watch` subscribers. Watchers read
/// by index, so any number can attach at any time and each sees every
/// event from the start.
struct JobEvents {
    log: Mutex<(Vec<Json>, bool)>,
    grew: Condvar,
    start: Instant,
}

impl JobEvents {
    fn new() -> Arc<Self> {
        Arc::new(JobEvents {
            log: Mutex::new((Vec::new(), false)),
            grew: Condvar::new(),
            start: Instant::now(),
        })
    }

    fn close(&self) {
        let mut log = self.log.lock().expect("job events poisoned");
        log.1 = true;
        self.grew.notify_all();
    }

    /// Events from index `from` on, plus whether the stream has ended.
    /// Blocks until there is something new (or the end).
    fn wait_from(&self, from: usize) -> (Vec<Json>, bool) {
        let mut log = self.log.lock().expect("job events poisoned");
        loop {
            if log.0.len() > from || log.1 {
                return (log.0[from.min(log.0.len())..].to_vec(), log.1);
            }
            log = self.grew.wait(log).expect("job events poisoned");
        }
    }
}

impl SweepObserver for JobEvents {
    fn on_event(&self, event: &SweepEvent<'_>) {
        let t_ms = self.start.elapsed().as_millis() as u64;
        let mut log = self.log.lock().expect("job events poisoned");
        log.0.push(event_json(event, t_ms));
        self.grew.notify_all();
    }
}

struct Job {
    grid: ExperimentGrid,
    /// Shard of the grid this job runs (`None` = the whole grid).
    shard: Option<ShardSpec>,
    store: PathBuf,
    status: JobStatus,
    /// Raster invocations this job performed (exact: jobs are serial).
    rasters: Option<u64>,
    cells: usize,
    render_jobs: usize,
    /// Render jobs a cached `.relog` satisfied at submission time.
    cached_jobs: usize,
    events: Arc<JobEvents>,
}

struct DaemonState {
    config: ServeConfig,
    jobs: Mutex<Vec<Job>>,
    queue: Mutex<VecDeque<usize>>,
    queue_grew: Condvar,
    in_flight: Arc<InFlightRenders>,
    draining: AtomicBool,
    started: Instant,
}

/// A bound daemon: the listener plus all shared state. [`Daemon::bind`]
/// then [`Daemon::run`]; `run` returns after a graceful drain.
pub struct Daemon {
    listener: TcpListener,
    state: Arc<DaemonState>,
}

impl Daemon {
    /// Binds the listen socket and prepares the root directory.
    ///
    /// # Errors
    /// Bind and directory-creation failures.
    pub fn bind(config: ServeConfig) -> io::Result<Daemon> {
        std::fs::create_dir_all(config.root.join("cache"))?;
        std::fs::create_dir_all(config.root.join("jobs"))?;
        // Register traces already imported under <root>/imports so a
        // submission may name `trace:<alias>` scenes from the first
        // connection on.
        let imports = config.root.join(re_sweep::importer::IMPORTS_DIR);
        for (path, why) in re_sweep::importer::register_dir(&imports)?.skipped {
            eprintln!(
                "[sweep serve] warning: skipping import {}: {why}",
                path.display()
            );
        }
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Daemon {
            listener,
            state: Arc::new(DaemonState {
                config,
                jobs: Mutex::new(Vec::new()),
                queue: Mutex::new(VecDeque::new()),
                queue_grew: Condvar::new(),
                in_flight: InFlightRenders::new(),
                draining: AtomicBool::new(false),
                started: Instant::now(),
            }),
        })
    }

    /// The address actually bound (resolves port 0).
    ///
    /// # Errors
    /// Socket introspection failures.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a graceful shutdown (the `shutdown` verb, or `stop`
    /// going true — the signal handler's flag). Drains the job queue,
    /// flushes every store and run log, writes `<root>/metrics.json`,
    /// then returns.
    ///
    /// # Errors
    /// Listener failures. Per-connection and per-job errors are reported
    /// to the affected client, never fatal to the daemon.
    pub fn run(self, stop: Option<&AtomicBool>) -> io::Result<()> {
        let state = Arc::clone(&self.state);
        let runner = std::thread::spawn(move || run_jobs(&state));

        self.listener.set_nonblocking(true)?;
        loop {
            if let Some(stop) = stop {
                if stop.load(Ordering::Relaxed) {
                    self.state.begin_drain();
                }
            }
            if self.state.draining.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    re_obs::metrics::counter(names::SERVE_CONNECTIONS).incr();
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || {
                        // A dropped client mid-conversation is routine.
                        let _ = handle_connection(&state, stream);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }

        runner.join().expect("job runner panicked");
        let mut json = re_obs::snapshot().to_json();
        json.push('\n');
        std::fs::write(self.state.config.root.join("metrics.json"), json)?;
        Ok(())
    }
}

impl DaemonState {
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.queue_grew.notify_all();
    }

    fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue poisoned").len()
    }
}

/// The job runner: pops submissions in order and executes them serially
/// (see the module docs for why serial). Exits once draining *and* the
/// queue is empty.
fn run_jobs(state: &Arc<DaemonState>) {
    loop {
        let index = {
            let mut queue = state.queue.lock().expect("queue poisoned");
            loop {
                if let Some(i) = queue.pop_front() {
                    break i;
                }
                if state.draining.load(Ordering::Acquire) {
                    return;
                }
                queue = state.queue_grew.wait(queue).expect("queue poisoned");
            }
        };
        run_one_job(state, index);
    }
}

fn run_one_job(state: &Arc<DaemonState>, index: usize) {
    let (grid, shard, store, events) = {
        let mut jobs = state.jobs.lock().expect("jobs poisoned");
        let job = &mut jobs[index];
        job.status = JobStatus::Running;
        (
            job.grid.clone(),
            job.shard,
            job.store.clone(),
            Arc::clone(&job.events),
        )
    };
    let cache = state.config.root.join("cache");

    let mut observers: Vec<Arc<dyn SweepObserver>> = vec![Arc::clone(&events) as _];
    let jsonl = match JsonlObserver::append(store.join(EVENTS_FILE), shard) {
        Ok(o) => {
            let o = Arc::new(o);
            observers.push(Arc::clone(&o) as _);
            Some(o)
        }
        // Losing the run log must not lose the job.
        Err(_) => None,
    };
    let opts = SweepOptions {
        workers: state.config.workers,
        trace_dir: Some(cache.clone()),
        log_dir: Some(cache.clone()),
        quiet: true,
        observer: Some(Arc::new(MultiObserver::new(observers))),
        executor: Some(Arc::new(AsyncExecutor {
            workers: state.config.workers,
            log_dir: Some(cache),
            heartbeat: None,
            prefetch: state.config.prefetch,
            in_flight: Some(Arc::clone(&state.in_flight)),
            ..AsyncExecutor::default()
        })),
        ..SweepOptions::default()
    };

    let before = re_gpu::raster_invocations();
    let plan = SweepPlan::compile(&grid);
    // `submit` already validated the shard, so a failure here (the spec
    // was valid then) can only mean internal inconsistency — surface it
    // as a failed job rather than panicking the runner.
    let result = match shard {
        Some(s) => plan
            .shard(s.index, s.count)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e)),
        None => Ok(plan),
    }
    .and_then(|plan| re_sweep::run_plan_with_store(&plan, &opts, &store));
    let rasters = re_gpu::raster_invocations() - before;

    let status = match result {
        Ok(_) => JobStatus::Done,
        Err(e) => JobStatus::Failed(e.to_string()),
    };
    if let Some(jsonl) = jsonl {
        let _ = jsonl.finish_with_rasters(
            if status == JobStatus::Done {
                "complete"
            } else {
                "error"
            },
            Some(rasters),
        );
    }
    {
        let mut jobs = state.jobs.lock().expect("jobs poisoned");
        let job = &mut jobs[index];
        job.status = status;
        job.rasters = Some(rasters);
    }
    events.close();
    re_obs::metrics::counter(names::SERVE_JOBS_DONE).incr();
}

fn handle_connection(state: &Arc<DaemonState>, stream: TcpStream) -> io::Result<()> {
    // Pick up traces imported since startup before parsing any grid this
    // client submits (already-registered aliases are a fast no-op scan).
    let imports = state.config.root.join(re_sweep::importer::IMPORTS_DIR);
    let _ = re_sweep::importer::register_dir(&imports);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized frame: answer, then drop the connection —
                // the stream is no longer frame-aligned.
                re_obs::metrics::counter(names::SERVE_BAD_FRAMES).incr();
                let _ = write_frame(&mut writer, &Response::Err(e.to_string()).to_json());
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse_line(&line) {
            Ok(r) => r,
            Err(e) => {
                re_obs::metrics::counter(names::SERVE_BAD_FRAMES).incr();
                write_frame(&mut writer, &Response::Err(e).to_json())?;
                continue;
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        if let Request::Watch { job } = request {
            stream_watch(state, &mut writer, job)?;
            continue;
        }
        if let Request::Cells { job } = request {
            stream_cells(state, &mut writer, job)?;
            continue;
        }
        let response = respond(state, &request);
        write_frame(&mut writer, &response.to_json())?;
        if shutdown {
            return Ok(());
        }
    }
}

/// Streams a job's buffered events (one frame each), then `done:true`.
fn stream_watch(state: &Arc<DaemonState>, writer: &mut impl io::Write, job: u64) -> io::Result<()> {
    let events = {
        let jobs = state.jobs.lock().expect("jobs poisoned");
        match job_index(&jobs, job) {
            Ok(i) => Arc::clone(&jobs[i].events),
            Err(e) => {
                return write_frame(writer, &Response::Err(e).to_json());
            }
        }
    };
    let mut from = 0;
    loop {
        let (batch, done) = events.wait_from(from);
        from += batch.len();
        for event in batch {
            write_frame(
                writer,
                &Response::Ok(vec![("event".to_string(), event)]).to_json(),
            )?;
        }
        if done {
            return write_frame(
                writer,
                &Response::Ok(vec![("done".to_string(), Json::Bool(true))]).to_json(),
            );
        }
    }
}

/// Streams a completed job's cell records — one `{"ok":true,"record":
/// {...}}` frame per record, in cell-id order, then `done:true`. Each
/// record is one store `cell_*.json` object, so every frame stays far
/// under `MAX_LINE` no matter how large the grid is.
fn stream_cells(state: &Arc<DaemonState>, writer: &mut impl io::Write, job: u64) -> io::Result<()> {
    let store = {
        let jobs = state.jobs.lock().expect("jobs poisoned");
        match job_index(&jobs, job) {
            Err(e) => return write_frame(writer, &Response::Err(e).to_json()),
            Ok(i) => match &jobs[i].status {
                JobStatus::Done => jobs[i].store.clone(),
                other => {
                    return write_frame(
                        writer,
                        &Response::Err(format!(
                            "job {job} is {} — wait for it to complete (status/watch)",
                            other.name()
                        ))
                        .to_json(),
                    )
                }
            },
        }
    };
    let records = match re_sweep::read_records(&store) {
        Ok(r) => r,
        Err(e) => return write_frame(writer, &Response::Err(e.to_string()).to_json()),
    };
    for record in &records {
        write_frame(
            writer,
            &Response::Ok(vec![("record".to_string(), record.to_json())]).to_json(),
        )?;
    }
    write_frame(
        writer,
        &Response::Ok(vec![("done".to_string(), Json::Bool(true))]).to_json(),
    )
}

fn job_index(jobs: &[Job], job: u64) -> Result<usize, String> {
    let index = (job as usize)
        .checked_sub(1)
        .filter(|&i| i < jobs.len())
        .ok_or_else(|| format!("no such job {job} (daemon has {})", jobs.len()))?;
    Ok(index)
}

fn respond(state: &Arc<DaemonState>, request: &Request) -> Response {
    match request {
        Request::Ping => Response::Ok(vec![
            ("proto".to_string(), Json::Int(PROTO_VERSION as i64)),
            (
                "uptime_ms".to_string(),
                Json::Int(state.started.elapsed().as_millis() as i64),
            ),
            (
                "queue_depth".to_string(),
                Json::Int(state.queue_depth() as i64),
            ),
            (
                "in_flight_renders".to_string(),
                Json::Int(state.in_flight.len() as i64),
            ),
        ]),
        Request::Submit { grid, shard } => submit(state, grid, *shard),
        Request::Status { job } => {
            let jobs = state.jobs.lock().expect("jobs poisoned");
            match job_index(&jobs, *job) {
                Err(e) => Response::Err(e),
                Ok(i) => {
                    let j = &jobs[i];
                    let mut fields = vec![
                        ("job".to_string(), Json::Int(*job as i64)),
                        ("state".to_string(), Json::Str(j.status.name().into())),
                        ("cells".to_string(), Json::Int(j.cells as i64)),
                        ("done".to_string(), Json::Int(cells_done(&j.events) as i64)),
                        ("render_jobs".to_string(), Json::Int(j.render_jobs as i64)),
                        ("cached_jobs".to_string(), Json::Int(j.cached_jobs as i64)),
                        (
                            "store".to_string(),
                            Json::Str(j.store.display().to_string()),
                        ),
                    ];
                    if let Some(s) = j.shard {
                        fields.push(("shard".to_string(), Json::Str(s.to_string())));
                    }
                    if let Some(r) = j.rasters {
                        fields.push(("rasters".to_string(), Json::Int(r as i64)));
                    }
                    if let JobStatus::Failed(e) = &j.status {
                        fields.push(("error".to_string(), Json::Str(e.clone())));
                    }
                    Response::Ok(fields)
                }
            }
        }
        Request::Report { job } => with_done_job(state, *job, |j| {
            let records = re_sweep::read_records(&j.store).map_err(|e| e.to_string())?;
            Ok(vec![(
                "report".to_string(),
                Json::Str(re_sweep::render_report(&records)),
            )])
        }),
        Request::Csv { job } => with_done_job(state, *job, |j| {
            let csv =
                std::fs::read_to_string(j.store.join("results.csv")).map_err(|e| e.to_string())?;
            Ok(vec![("csv".to_string(), Json::Str(csv))])
        }),
        Request::Metrics => match Json::parse(&re_obs::snapshot().to_json()) {
            Ok(snapshot) => Response::Ok(vec![
                ("metrics".to_string(), snapshot),
                (
                    "queue_depth".to_string(),
                    Json::Int(state.queue_depth() as i64),
                ),
                (
                    "uptime_ms".to_string(),
                    Json::Int(state.started.elapsed().as_millis() as i64),
                ),
            ]),
            Err(e) => Response::Err(format!("metrics snapshot: {e}")),
        },
        Request::Shutdown => {
            state.begin_drain();
            Response::Ok(vec![("draining".to_string(), Json::Bool(true))])
        }
        // Watch and cells are streamed by the connection handler, never
        // here.
        Request::Watch { .. } => Response::Err("internal: watch must stream".to_string()),
        Request::Cells { .. } => Response::Err("internal: cells must stream".to_string()),
    }
}

/// Cells this job has committed so far, read off its buffered event
/// stream: the store-resume base (cells found already complete) plus the
/// latest per-segment completion count (`cell_done`/`progress` carry a
/// running `done` that excludes resumed cells).
fn cells_done(events: &JobEvents) -> usize {
    let log = events.log.lock().expect("job events poisoned");
    let mut resumed = 0;
    let mut done = 0;
    for event in &log.0 {
        match event.get("type").and_then(Json::as_str) {
            Some("store_resume") => {
                resumed = event.get("resumed").and_then(Json::as_u64).unwrap_or(0) as usize;
            }
            Some("cell_done" | "progress") => {
                done = event.get("done").and_then(Json::as_u64).unwrap_or(0) as usize;
            }
            _ => {}
        }
    }
    resumed + done
}

/// Runs `body` on a job that must have completed successfully.
fn with_done_job(
    state: &Arc<DaemonState>,
    job: u64,
    body: impl FnOnce(&Job) -> Result<Vec<(String, Json)>, String>,
) -> Response {
    let jobs = state.jobs.lock().expect("jobs poisoned");
    match job_index(&jobs, job) {
        Err(e) => Response::Err(e),
        Ok(i) => match &jobs[i].status {
            JobStatus::Done => match body(&jobs[i]) {
                Ok(fields) => Response::Ok(fields),
                Err(e) => Response::Err(e),
            },
            other => Response::Err(format!(
                "job {job} is {} — wait for it to complete (status/watch)",
                other.name()
            )),
        },
    }
}

fn submit(state: &Arc<DaemonState>, grid: &ExperimentGrid, shard: Option<ShardSpec>) -> Response {
    if state.draining.load(Ordering::Acquire) {
        return Response::Err("daemon is draining, not accepting submissions".to_string());
    }
    // Compile now so a bad grid (or shard spec) fails the submitter, not
    // the queue, and so the response can say how much Stage A the caches
    // already cover — counted on the shard actually being run.
    let full = SweepPlan::compile(grid);
    let mut plan = match shard {
        Some(s) => match full.shard(s.index, s.count) {
            Ok(p) => p,
            Err(e) => return Response::Err(format!("shard: {e}")),
        },
        None => full,
    };
    plan.attach_cached_logs(&RenderLogCache::new(Some(state.config.root.join("cache"))));
    let cached = plan
        .render_jobs()
        .iter()
        .filter(|rj| rj.cached_log.is_some())
        .count();
    re_obs::metrics::counter(names::SERVE_DEDUP_CACHED).add(cached as u64);
    re_obs::metrics::counter(names::SERVE_SUBMISSIONS).incr();

    let (id, cells, render_jobs) = {
        let mut jobs = state.jobs.lock().expect("jobs poisoned");
        let id = jobs.len() as u64 + 1;
        let job = Job {
            grid: grid.clone(),
            shard,
            store: state.config.root.join("jobs").join(format!("job-{id}")),
            status: JobStatus::Queued,
            rasters: None,
            cells: plan.cell_count(),
            render_jobs: plan.render_job_count(),
            cached_jobs: cached,
            events: JobEvents::new(),
        };
        let info = (id, job.cells, job.render_jobs);
        jobs.push(job);
        info
    };
    {
        let mut queue = state.queue.lock().expect("queue poisoned");
        queue.push_back(id as usize - 1);
        state.queue_grew.notify_all();
    }
    let mut fields = vec![
        ("job".to_string(), Json::Int(id as i64)),
        ("cells".to_string(), Json::Int(cells as i64)),
        ("render_jobs".to_string(), Json::Int(render_jobs as i64)),
        ("cached_jobs".to_string(), Json::Int(cached as i64)),
        (
            "fingerprint".to_string(),
            Json::Str(format!("{:016x}", grid.fingerprint())),
        ),
    ];
    if let Some(s) = shard {
        fields.push(("shard".to_string(), Json::Str(s.to_string())));
    }
    Response::Ok(fields)
}
