//! The `sweep serve` wire protocol: line-delimited JSON frames over a
//! local TCP socket.
//!
//! Every frame is one JSON object on one `\n`-terminated line, at most
//! [`MAX_LINE`] bytes. Clients send [`Request`]s (`{"verb": ...}`); the
//! daemon answers each with one [`Response`] (`{"ok": true, ...}` or
//! `{"ok": false, "error": ...}`) — except `watch`, which streams one
//! `{"ok":true,"event":{...}}` frame per sweep event (the objects are the
//! `events.jsonl` records verbatim) before a final `{"ok":true,"done":
//! true}`. Malformed input — oversized lines, bad JSON, unknown verbs,
//! missing fields — always produces a structured error frame, never a
//! crash or a silent drop. The full schema lives in `docs/SERVING.md` and
//! `docs/FORMATS.md`.
//!
//! Grids travel as `{"frames","width","height","axes":{name: "list"}}`,
//! with each axis list in the exact string form its CLI flag takes
//! ([`re_sweep::axis`] `parse_list`/`format_value`), so a grid
//! round-trips the codec bit-exactly and the daemon re-derives the same
//! fingerprint the client's one-shot run would.

use std::io::{self, BufRead};

use re_sweep::axis::{self, AXES};
use re_sweep::json::Json;
use re_sweep::{ExperimentGrid, ShardSpec};

/// Protocol version, echoed in `hello` responses.
pub const PROTO_VERSION: u64 = 1;

/// Upper bound on one frame (the `\n` included). A line longer than this
/// is rejected with a structured error and the connection is closed —
/// the daemon never buffers unbounded client input.
pub const MAX_LINE: usize = 1 << 20;

/// One client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Submit a grid; the daemon replies with the assigned job id.
    Submit {
        /// The grid to run (boxed: it dwarfs the other variants).
        grid: Box<ExperimentGrid>,
        /// Run only this shard of the compiled plan (wire form `"K/N"`,
        /// 1-based, exactly like the CLI's `--shard`). `None` runs the
        /// whole grid. A fleet driver uses this to place one shard of a
        /// partition on a remote daemon.
        shard: Option<ShardSpec>,
    },
    /// One-shot snapshot of a job's state.
    Status {
        /// Job id from `submit`.
        job: u64,
    },
    /// Stream the job's sweep events until it completes.
    Watch {
        /// Job id from `submit`.
        job: u64,
    },
    /// Render the per-axis report tables of a completed job's store.
    Report {
        /// Job id from `submit`.
        job: u64,
    },
    /// Fetch a completed job's `results.csv` verbatim.
    Csv {
        /// Job id from `submit`.
        job: u64,
    },
    /// Stream a completed job's cell records, one
    /// `{"ok":true,"record":{...}}` frame per record (the `cell_*.json`
    /// store objects verbatim) then `{"ok":true,"done":true}`. Streaming
    /// keeps every frame far under [`MAX_LINE`] however large the grid —
    /// a fleet driver fetches a daemon shard's records this way to
    /// materialize a local store for the merge.
    Cells {
        /// Job id from `submit`.
        job: u64,
    },
    /// Snapshot of the daemon process's `re_obs` metrics registry.
    Metrics,
    /// Graceful drain: finish every accepted job, flush stores, run
    /// logs and metrics, then exit.
    Shutdown,
}

impl Request {
    /// The request's verb string.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Submit { .. } => "submit",
            Request::Status { .. } => "status",
            Request::Watch { .. } => "watch",
            Request::Report { .. } => "report",
            Request::Csv { .. } => "csv",
            Request::Cells { .. } => "cells",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }

    /// Serializes the request as its wire object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("verb".to_string(), Json::Str(self.verb().into()))];
        match self {
            Request::Submit { grid, shard } => {
                pairs.push(("grid".to_string(), grid_to_json(grid)));
                if let Some(s) = shard {
                    pairs.push(("shard".to_string(), Json::Str(s.to_string())));
                }
            }
            Request::Status { job }
            | Request::Watch { job }
            | Request::Report { job }
            | Request::Csv { job }
            | Request::Cells { job } => {
                pairs.push(("job".to_string(), Json::Int(*job as i64)));
            }
            Request::Ping | Request::Metrics | Request::Shutdown => {}
        }
        Json::Obj(pairs)
    }

    /// Parses one request frame.
    ///
    /// # Errors
    /// A description of what is malformed — bad JSON, an unknown verb, a
    /// missing or mistyped field. Never panics, whatever the input.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let v = Json::parse(line.trim()).map_err(|e| format!("bad frame: {e}"))?;
        let verb = v
            .get("verb")
            .and_then(Json::as_str)
            .ok_or("frame has no `verb`")?;
        let job = || -> Result<u64, String> {
            v.get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{verb}: missing or invalid `job`"))
        };
        match verb {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let grid = grid_from_json(v.get("grid").ok_or("submit: missing `grid`")?)?;
                let shard = match v.get("shard") {
                    None => None,
                    Some(s) => {
                        let s = s.as_str().ok_or("submit: `shard` is not a string")?;
                        Some(ShardSpec::parse(s).map_err(|e| format!("submit: shard: {e}"))?)
                    }
                };
                Ok(Request::Submit {
                    grid: Box::new(grid),
                    shard,
                })
            }
            "status" => Ok(Request::Status { job: job()? }),
            "watch" => Ok(Request::Watch { job: job()? }),
            "report" => Ok(Request::Report { job: job()? }),
            "csv" => Ok(Request::Csv { job: job()? }),
            "cells" => Ok(Request::Cells { job: job()? }),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown verb `{other}`")),
        }
    }
}

/// One daemon response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success, with verb-specific payload fields.
    Ok(Vec<(String, Json)>),
    /// Failure, with a human-readable reason.
    Err(String),
}

impl Response {
    /// Serializes the response as its wire object.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok(fields) => {
                let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
                pairs.extend(fields.iter().cloned());
                Json::Obj(pairs)
            }
            Response::Err(e) => Json::Obj(vec![
                ("ok".to_string(), Json::Bool(false)),
                ("error".to_string(), Json::Str(e.clone())),
            ]),
        }
    }

    /// Parses one response frame.
    ///
    /// # Errors
    /// A description of what is malformed. Never panics.
    pub fn parse_line(line: &str) -> Result<Response, String> {
        let v = Json::parse(line.trim()).map_err(|e| format!("bad frame: {e}"))?;
        match v.get("ok") {
            Some(Json::Bool(true)) => {
                let fields = match &v {
                    Json::Obj(pairs) => pairs.iter().filter(|(k, _)| k != "ok").cloned().collect(),
                    _ => Vec::new(),
                };
                Ok(Response::Ok(fields))
            }
            // A well-formed failure frame parses fine — `Err` here is
            // reserved for frames that are themselves malformed.
            Some(Json::Bool(false)) => Ok(Response::Err(
                v.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified error")
                    .to_string(),
            )),
            _ => Err("frame has no boolean `ok`".to_string()),
        }
    }

    /// A payload field by name (`None` for errors and absent fields).
    pub fn field(&self, name: &str) -> Option<&Json> {
        match self {
            Response::Ok(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            Response::Err(_) => None,
        }
    }
}

/// Serializes a grid as its wire object. Every axis travels — including
/// ones still at their default — so the receiver reconstructs the grid
/// without consulting its own registry defaults.
pub fn grid_to_json(grid: &ExperimentGrid) -> Json {
    let axes = AXES
        .iter()
        .enumerate()
        .map(|(a, def)| {
            let list = grid
                .axis_values(a)
                .iter()
                .map(|&v| def.format_value(v))
                .collect::<Vec<_>>()
                .join(",");
            (def.name.to_string(), Json::Str(list))
        })
        .collect();
    Json::Obj(vec![
        ("frames".to_string(), Json::Int(grid.frames as i64)),
        ("width".to_string(), Json::Int(grid.width as i64)),
        ("height".to_string(), Json::Int(grid.height as i64)),
        ("axes".to_string(), Json::Obj(axes)),
    ])
}

/// Parses a grid from its wire object, validating every axis list
/// against the registry exactly like the CLI flags do.
///
/// # Errors
/// A description of the offending field or axis value.
pub fn grid_from_json(v: &Json) -> Result<ExperimentGrid, String> {
    let num = |k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("grid: missing or invalid `{k}`"))
    };
    let mut grid = ExperimentGrid::default();
    grid.frames = num("frames")? as usize;
    grid.width = u32::try_from(num("width")?).map_err(|_| "grid: `width` out of range")?;
    grid.height = u32::try_from(num("height")?).map_err(|_| "grid: `height` out of range")?;
    if grid.frames == 0 || grid.width == 0 || grid.height == 0 {
        return Err("grid: frames, width and height must be positive".to_string());
    }
    let Some(Json::Obj(axes)) = v.get("axes") else {
        return Err("grid: missing `axes` object".to_string());
    };
    for (name, list) in axes {
        let a = axis::by_name(name).ok_or_else(|| format!("grid: unknown axis `{name}`"))?;
        let list = list
            .as_str()
            .ok_or_else(|| format!("grid: axis `{name}` is not a string list"))?;
        let values = AXES[a]
            .parse_list(list)
            .map_err(|e| format!("grid: axis `{name}`: {e}"))?;
        grid.set_axis(a, values)
            .map_err(|e| format!("grid: axis `{name}`: {e}"))?;
    }
    Ok(grid)
}

/// Reads one frame from `src`: the next `\n`-terminated line, enforcing
/// [`MAX_LINE`]. Returns `Ok(None)` on a clean EOF.
///
/// # Errors
/// I/O errors, or [`io::ErrorKind::InvalidData`] for an oversized line
/// (the caller should report it and drop the connection — the rest of
/// the stream cannot be trusted to be frame-aligned).
pub fn read_frame(src: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let chunk = src.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a clean end between frames, or a torn final line —
            // either way there is no complete frame left.
            return Ok(if buf.is_empty() {
                None
            } else {
                Some(lossy(buf))
            });
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        if buf.len() + take > MAX_LINE {
            src.consume(take);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame exceeds {MAX_LINE} bytes"),
            ));
        }
        buf.extend_from_slice(&chunk[..take]);
        src.consume(take);
        if done {
            return Ok(Some(lossy(buf)));
        }
    }
}

fn lossy(buf: Vec<u8>) -> String {
    String::from_utf8_lossy(&buf).into_owned()
}

/// Writes `json` as one frame.
///
/// # Errors
/// I/O errors.
pub fn write_frame(dst: &mut impl io::Write, json: &Json) -> io::Result<()> {
    let mut line = json.to_string();
    line.push('\n');
    dst.write_all(line.as_bytes())?;
    dst.flush()
}
