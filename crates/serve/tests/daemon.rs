//! End-to-end daemon tests: a real `Daemon` on an ephemeral port, real
//! TCP clients, and the dedup/determinism contract — a re-submitted grid
//! performs **zero** raster invocations and returns a `results.csv`
//! byte-identical to the one-shot `sweep run` of the same grid.
//!
//! The `gpu.raster_invocations` counter is process-global, so every test
//! that renders serializes on [`DAEMON_LOCK`].

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use re_serve::proto::{read_frame, write_frame};
use re_serve::{Client, Daemon, Request, Response, ServeConfig, MAX_LINE};
use re_sweep::json::Json;
use re_sweep::ExperimentGrid;

static DAEMON_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    DAEMON_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "re-serve-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Binds a daemon on an ephemeral port and serves it on a thread.
/// Returns the address and the join handle (`shutdown` ends it).
fn start_daemon(root: PathBuf) -> (String, std::thread::JoinHandle<()>) {
    let daemon = Daemon::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        root,
        workers: 2,
        prefetch: 2,
    })
    .expect("bind daemon");
    let addr = daemon.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || daemon.run(None).expect("daemon run"));
    (addr, handle)
}

fn small_grid() -> ExperimentGrid {
    let mut grid = ExperimentGrid::default().with_scenes(&["ccs"]);
    grid.frames = 2;
    grid.set_axis(re_sweep::axis::TILE_SIZE, vec![16, 32])
        .expect("tile axis");
    grid
}

/// Submits `grid` and polls until the job completes; returns
/// `(job id, raster invocations the daemon attributed to it)`.
fn submit_and_wait(addr: &str, grid: &ExperimentGrid) -> (u64, u64) {
    let mut client = Client::connect(addr).expect("connect");
    let response = client
        .request(&Request::Submit {
            grid: Box::new(grid.clone()),
            shard: None,
        })
        .expect("submit");
    let job = response
        .field("job")
        .and_then(Json::as_u64)
        .expect("job id in submit response");
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let status = client.request(&Request::Status { job }).expect("status");
        match status.field("state").and_then(Json::as_str) {
            Some("done") => {
                let rasters = status
                    .field("rasters")
                    .and_then(Json::as_u64)
                    .expect("done job reports rasters");
                return (job, rasters);
            }
            Some("failed") => panic!(
                "job {job} failed: {:?}",
                status.field("error").and_then(Json::as_str)
            ),
            _ => {}
        }
    }
}

fn fetch_csv(addr: &str, job: u64) -> String {
    let mut client = Client::connect(addr).expect("connect");
    let response = client.request(&Request::Csv { job }).expect("csv");
    response
        .field("csv")
        .and_then(Json::as_str)
        .expect("csv payload")
        .to_string()
}

/// The headline dedup pin: two clients submit the same grid; the second
/// job costs zero raster invocations and both CSVs are byte-identical to
/// each other and to a one-shot in-process run of the same plan.
#[test]
fn second_submission_rasterizes_nothing_and_matches_one_shot_csv() {
    let _guard = lock();
    let root = tmp_dir("dedup");
    let (addr, handle) = start_daemon(root.clone());
    let grid = small_grid();

    let (job1, rasters1) = submit_and_wait(&addr, &grid);
    assert!(rasters1 > 0, "a cold submission must rasterize");

    // A second client, same grid: the shared cache covers every render
    // key, so Stage A costs nothing.
    let (job2, rasters2) = submit_and_wait(&addr, &grid);
    assert_eq!(rasters2, 0, "warm resubmission must not rasterize");

    let csv1 = fetch_csv(&addr, job1);
    let csv2 = fetch_csv(&addr, job2);
    assert_eq!(csv1, csv2, "daemon CSVs must be byte-identical");

    // One-shot reference run of the same grid (serial — the daemon is
    // idle now, so the global raster counter stays attributable).
    let out = tmp_dir("dedup-oneshot");
    let plan = re_sweep::SweepPlan::compile(&grid);
    let opts = re_sweep::SweepOptions {
        quiet: true,
        ..re_sweep::SweepOptions::default()
    };
    re_sweep::run_plan_with_store(&plan, &opts, &out).expect("one-shot run");
    let reference = std::fs::read_to_string(out.join("results.csv")).expect("one-shot csv");
    assert_eq!(csv1, reference, "daemon CSV must match one-shot CSV");

    // The submit response advertised the dedup: every render job of the
    // second submission was already cached.
    let mut client = Client::connect(&addr).expect("connect");
    let status = client
        .request(&Request::Status { job: job2 })
        .expect("status");
    assert_eq!(
        status.field("cached_jobs").and_then(Json::as_u64),
        status.field("render_jobs").and_then(Json::as_u64),
        "warm submission must be fully cache-covered"
    );

    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("daemon thread");
    assert!(
        root.join("metrics.json").exists(),
        "graceful shutdown writes the metrics snapshot"
    );
}

/// `watch` streams the job's events and terminates with `done:true`.
#[test]
fn watch_streams_events_until_done() {
    let _guard = lock();
    let root = tmp_dir("watch");
    let (addr, handle) = start_daemon(root);
    let (job, _) = submit_and_wait(&addr, &small_grid());

    let mut client = Client::connect(&addr).expect("connect");
    let stream = TcpStream::connect(&addr).expect("raw connect");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    write_frame(&mut writer, &Request::Watch { job }.to_json()).expect("send watch");
    let mut events = 0;
    loop {
        let line = read_frame(&mut reader)
            .expect("read watch frame")
            .expect("watch must end with done, not EOF");
        let response = Response::parse_line(&line).expect("watch frame parses");
        if response.field("done").is_some() {
            break;
        }
        assert!(response.field("event").is_some(), "frame is event or done");
        events += 1;
    }
    assert!(events > 0, "a completed job has a non-empty event stream");

    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("daemon thread");
}

/// Hostile input against a live daemon: garbage, unknown verbs and bad
/// ids get structured errors on the same connection; an oversized line
/// gets an error and a close; and the daemon serves normally afterwards.
#[test]
fn hostile_clients_get_errors_not_crashes() {
    let _guard = lock();
    let root = tmp_dir("hostile");
    let (addr, handle) = start_daemon(root);

    // Garbage, unknown verb, missing field, bad job id — one connection.
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    for line in [
        "this is not json\n",
        "{\"verb\":\"frobnicate\"}\n",
        "{\"verb\":\"status\"}\n",
        "{\"verb\":\"status\",\"job\":999}\n",
    ] {
        writer.write_all(line.as_bytes()).expect("send");
        writer.flush().expect("flush");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        let response = Response::parse_line(&reply).expect("reply parses");
        assert!(
            matches!(response, Response::Err(_)),
            "hostile line {line:?} must get a structured error, got {response:?}"
        );
    }
    // The connection survived all of that: a ping still answers.
    write_frame(&mut writer, &Request::Ping.to_json()).expect("send ping");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    assert!(matches!(
        Response::parse_line(&reply).expect("pong parses"),
        Response::Ok(_)
    ));

    // An oversized frame: structured error, then the daemon closes the
    // (no longer frame-aligned) connection.
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);
    let mut big = vec![b'x'; MAX_LINE + 1];
    big.push(b'\n');
    writer.write_all(&big).expect("send oversized");
    writer.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    assert!(matches!(
        Response::parse_line(&reply).expect("error frame parses"),
        Response::Err(_)
    ));
    let mut rest = String::new();
    assert_eq!(
        reader.read_line(&mut rest).expect("read to EOF"),
        0,
        "daemon must close after an oversized frame"
    );

    // A truncated frame (no trailing newline, then EOF) must not wedge
    // or kill the daemon either.
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
    writer.write_all(b"{\"verb\":\"pi").expect("send torn");
    writer.flush().expect("flush");
    drop(writer);
    drop(stream);

    // And after all that abuse, a well-formed client works.
    let mut client = Client::connect(&addr).expect("connect");
    let pong = client.request(&Request::Ping).expect("ping");
    assert!(matches!(pong, Response::Ok(_)));
    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("daemon thread");
}

/// The daemon shard path end to end — the exact data flow the `sweep
/// fleet` daemon backend drives: submit each shard of a partition with
/// `shard: Some(K/N)`, poll with the library `status` (which now carries
/// `done`), fetch records with the streaming `cells` verb, materialize
/// local shard stores from them, and `merge_stores` the result into a
/// CSV byte-identical to the unsharded one-shot run.
#[test]
fn sharded_submissions_merge_to_the_unsharded_csv() {
    let _guard = lock();
    let root = tmp_dir("shard");
    let (addr, handle) = start_daemon(root);
    let grid = small_grid(); // two render keys → a 2-way partition

    let plan = re_sweep::SweepPlan::compile(&grid);
    let fleet_root = tmp_dir("shard-fleet");
    let mut client = Client::connect(&addr).expect("connect");
    for index in 0..2 {
        let shard = re_sweep::ShardSpec { index, count: 2 };
        let outcome = client.submit(&grid, Some(shard)).expect("submit shard");
        let shard_plan = plan.shard(index, 2).expect("shard plan");
        assert_eq!(
            outcome.cells as usize,
            shard_plan.cell_count(),
            "daemon must accept the shard, not the whole grid"
        );
        let snapshot = loop {
            std::thread::sleep(Duration::from_millis(20));
            let s = client.status(outcome.job).expect("status");
            match s.state.as_str() {
                "done" => break s,
                "failed" => panic!("shard job failed: {:?}", s.error),
                _ => {}
            }
        };
        assert_eq!(
            snapshot.done as usize,
            shard_plan.cell_count(),
            "status must count committed cells"
        );
        // Fetch the shard's records and materialize a local store — the
        // daemon's store stays on its own host in a real fleet.
        let records = client.cells(outcome.job).expect("cells");
        assert_eq!(records.len(), shard_plan.cell_count());
        let dir = fleet_root.join(format!("shards/shard-{index}"));
        let (store, _) =
            re_sweep::ResultStore::open_for_plan(&dir, &shard_plan).expect("shard store");
        for rec in &records {
            store.record(rec).expect("record");
        }
    }

    let merged = fleet_root.join("merged");
    re_sweep::merge_stores(&merged, &[fleet_root.join("shards")]).expect("merge");
    let merged_csv = std::fs::read_to_string(merged.join("results.csv")).expect("merged csv");

    let out = tmp_dir("shard-oneshot");
    let opts = re_sweep::SweepOptions {
        quiet: true,
        ..re_sweep::SweepOptions::default()
    };
    re_sweep::run_plan_with_store(&plan, &opts, &out).expect("one-shot run");
    let reference = std::fs::read_to_string(out.join("results.csv")).expect("one-shot csv");
    assert_eq!(
        merged_csv, reference,
        "merged daemon shards must reproduce the unsharded CSV byte for byte"
    );

    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("daemon thread");
}

/// Draining rejects new submissions but still answers status queries.
#[test]
fn draining_daemon_rejects_new_submissions() {
    let _guard = lock();
    let root = tmp_dir("drain");
    let (addr, handle) = start_daemon(root);
    // Connect BEFORE the drain: a draining daemon accepts no new
    // connections, so the rejection is only observable on one that was
    // already being served.
    let mut submitter = Client::connect(&addr).expect("connect");
    let mut client = Client::connect(&addr).expect("connect");
    client.request(&Request::Shutdown).expect("shutdown");
    let response = submitter
        .request(&Request::Submit {
            grid: Box::new(small_grid()),
            shard: None,
        })
        .expect("submit during drain");
    match response {
        Response::Err(e) => assert!(e.contains("draining"), "unexpected reason: {e}"),
        Response::Ok(_) => panic!("a draining daemon must reject submissions"),
    }
    drop(client);
    drop(submitter);
    handle.join().expect("daemon thread");
}
