//! Wire-protocol properties: every frame the codec emits parses back to
//! the same value, and hostile input — garbage bytes, truncated JSON,
//! unknown verbs, oversized lines — produces a structured error, never a
//! panic.

use std::io::{BufReader, Cursor};

use proptest::prelude::*;
use re_serve::proto::{grid_from_json, grid_to_json, read_frame, write_frame};
use re_serve::{Request, Response, MAX_LINE};
use re_sweep::axis::{self, AXES};
use re_sweep::json::Json;
use re_sweep::ExperimentGrid;

/// A uniform in-domain raw value for `axis` from a random seed (mirrors
/// the sampler in `re_sweep`'s axis round-trip suite).
fn sample(a: axis::AxisId, seed: u64) -> u64 {
    if let Some(domain) = AXES[a].domain_values() {
        return domain[seed as usize % domain.len()];
    }
    let raw = match a {
        axis::TILE_SIZE => 1 + seed % 64,
        axis::SIG_BITS => 1 + seed % 32,
        axis::COMPARE_DISTANCE => 1 + seed % 8,
        axis::REFRESH_PERIOD => seed % 16,
        axis::OT_DEPTH => 1 + seed % 64,
        axis::L2_KB => 1 + seed % 4096,
        axis::SIG_COMPARE_CYCLES => seed % 64,
        axis::MEMO_KB => 1 + seed % 256,
        _ => panic!("new numeric axis `{}` needs a sampler row", AXES[a].name),
    };
    assert!(
        AXES[a].is_valid(raw),
        "sampler produced out-of-domain value"
    );
    raw
}

/// Round-trips a request through its wire line.
fn round_trip(request: &Request) -> Request {
    let line = request.to_json().to_string();
    Request::parse_line(&line).expect("emitted frame must parse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A grid with one random non-default axis survives
    /// submit → wire → parse bit-exactly (same fingerprint, same cells).
    #[test]
    fn submit_frames_round_trip(
        a in 0usize..re_sweep::AXIS_COUNT,
        s1 in any::<u64>(),
        s2 in any::<u64>(),
        frames in 1usize..6,
    ) {
        let (v1, v2) = (sample(a, s1), sample(a, s2));
        prop_assume!(v1 != v2);
        let mut grid = ExperimentGrid::default().with_scenes(&["ccs", "hop"]);
        grid.frames = frames;
        grid.set_axis(a, vec![v1, v2]).unwrap();

        let request = Request::Submit { grid: Box::new(grid.clone()), shard: None };
        let back = match round_trip(&request) {
            Request::Submit { grid, shard: None } => *grid,
            other => panic!("wrong verb: {other:?}"),
        };
        prop_assert_eq!(&back, &grid);
        prop_assert_eq!(back.fingerprint(), grid.fingerprint());

        // A sharded submission carries its 1-based `K/N` spec through too.
        let shard = Some(re_sweep::ShardSpec { index: s1 as usize % 4, count: 4 });
        let sharded = Request::Submit { grid: Box::new(grid.clone()), shard };
        prop_assert_eq!(round_trip(&sharded), sharded);

        // The standalone grid codec agrees with the framed one.
        let again = grid_from_json(&grid_to_json(&grid)).unwrap();
        prop_assert_eq!(&again, &grid);
    }

    /// Job-addressed verbs carry their id through the wire unchanged.
    #[test]
    fn job_verbs_round_trip(seed in any::<u64>()) {
        // Halve the seed: ids travel as i64, so stay inside its range.
        let job = seed >> 1;
        for request in [
            Request::Status { job },
            Request::Watch { job },
            Request::Report { job },
            Request::Csv { job },
            Request::Cells { job },
        ] {
            prop_assert_eq!(round_trip(&request), request);
        }
    }

    /// Payload-free verbs round-trip too.
    #[test]
    fn bare_verbs_round_trip(which in 0usize..3) {
        let request = [Request::Ping, Request::Metrics, Request::Shutdown][which].clone();
        prop_assert_eq!(round_trip(&request), request);
    }

    /// Ok responses keep every payload field in order; error responses
    /// keep their message.
    #[test]
    fn responses_round_trip(n in any::<i64>(), s in any::<u64>(), b in any::<bool>()) {
        let ok = Response::Ok(vec![
            ("count".to_string(), Json::Int(n)),
            ("name".to_string(), Json::Str(format!("job-{s}"))),
            ("flag".to_string(), Json::Bool(b)),
        ]);
        let line = ok.to_json().to_string();
        prop_assert_eq!(Response::parse_line(&line).unwrap(), ok);

        let err = Response::Err(format!("no such job {s}"));
        let line = err.to_json().to_string();
        prop_assert_eq!(Response::parse_line(&line).unwrap(), err);
    }

    /// Arbitrary bytes never panic the request parser: anything that is
    /// not a well-formed frame comes back as `Err(reason)`.
    #[test]
    fn hostile_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = Request::parse_line(&line);
        let _ = Response::parse_line(&line);
    }
}

#[test]
fn malformed_frames_are_structured_errors() {
    let cases = [
        ("", "empty line"),
        ("not json at all", "garbage"),
        ("{\"verb\":", "truncated JSON"),
        ("[1,2,3]", "non-object frame"),
        ("{\"noverb\":true}", "missing verb"),
        ("{\"verb\":\"frobnicate\"}", "unknown verb"),
        ("{\"verb\":\"status\"}", "missing job id"),
        ("{\"verb\":\"status\",\"job\":\"x\"}", "mistyped job id"),
        ("{\"verb\":\"status\",\"job\":-3}", "negative job id"),
        ("{\"verb\":\"submit\"}", "missing grid"),
        ("{\"verb\":\"submit\",\"grid\":7}", "mistyped grid"),
        (
            "{\"verb\":\"submit\",\"shard\":\"0/2\",\
             \"grid\":{\"frames\":1,\"width\":1,\"height\":1,\"axes\":{}}}",
            "zero-based shard",
        ),
        (
            "{\"verb\":\"submit\",\"shard\":7,\
             \"grid\":{\"frames\":1,\"width\":1,\"height\":1,\"axes\":{}}}",
            "mistyped shard",
        ),
        (
            "{\"verb\":\"submit\",\"grid\":{\"frames\":0,\"width\":1,\"height\":1,\"axes\":{}}}",
            "zero frames",
        ),
        (
            "{\"verb\":\"submit\",\"grid\":{\"frames\":1,\"width\":1,\"height\":1,\
             \"axes\":{\"no_such_axis\":\"1\"}}}",
            "unknown axis",
        ),
        (
            "{\"verb\":\"submit\",\"grid\":{\"frames\":1,\"width\":1,\"height\":1,\
             \"axes\":{\"tile_size\":\"0\"}}}",
            "out-of-domain axis value",
        ),
    ];
    for (line, what) in cases {
        assert!(
            Request::parse_line(line).is_err(),
            "{what} must be rejected: {line:?}"
        );
    }
}

#[test]
fn read_frame_splits_lines_and_reports_torn_tails() {
    let mut src = BufReader::new(Cursor::new(b"{\"a\":1}\n{\"b\":2}\ntorn".to_vec()));
    assert_eq!(
        read_frame(&mut src).unwrap().as_deref(),
        Some("{\"a\":1}\n")
    );
    assert_eq!(
        read_frame(&mut src).unwrap().as_deref(),
        Some("{\"b\":2}\n")
    );
    // A torn tail still surfaces (the parser then rejects it)…
    assert_eq!(read_frame(&mut src).unwrap().as_deref(), Some("torn"));
    // …and a clean EOF is None.
    assert_eq!(read_frame(&mut src).unwrap(), None);
}

#[test]
fn read_frame_rejects_oversized_lines_without_buffering_them() {
    let mut big = vec![b'a'; MAX_LINE + 10];
    big.push(b'\n');
    let mut src = BufReader::new(Cursor::new(big));
    let err = read_frame(&mut src).expect_err("oversized line must error");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn write_then_read_frame_round_trips() {
    let mut wire = Vec::new();
    let frame = Request::Ping.to_json();
    write_frame(&mut wire, &frame).unwrap();
    write_frame(&mut wire, &Request::Shutdown.to_json()).unwrap();
    let mut src = BufReader::new(Cursor::new(wire));
    let line = read_frame(&mut src).unwrap().unwrap();
    assert_eq!(Request::parse_line(&line).unwrap(), Request::Ping);
    let line = read_frame(&mut src).unwrap().unwrap();
    assert_eq!(Request::parse_line(&line).unwrap(), Request::Shutdown);
}
