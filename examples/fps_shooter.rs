//! The adversarial case: an FPS workload (`mst`, Modern-Strike-like) whose
//! camera moves every frame, leaving Rendering Elimination nothing to skip.
//! The point of this example is the paper's overhead claim: even when RE is
//! useless, it costs well under 1%.
//!
//! ```sh
//! cargo run --release --example fps_shooter
//! ```

use rendering_elimination::core::{SimOptions, Simulator};
use rendering_elimination::gpu::GpuConfig;
use rendering_elimination::workloads;

fn main() {
    let mut bench = workloads::by_alias("mst").expect("mst is part of the suite");
    println!(
        "benchmark: {} (stand-in for {}, {})",
        bench.alias, bench.stands_for, bench.genre
    );

    let mut sim = Simulator::new(SimOptions {
        gpu: GpuConfig {
            width: 598,
            height: 384,
            tile_size: 16,
            ..Default::default()
        },
        ..SimOptions::default()
    });
    let report = sim.run(bench.scene.as_mut(), 30);

    let b = &report.baseline;
    let r = &report.re;
    println!();
    println!(
        "equal tiles frame-to-frame : {:.1}%",
        report.equal_tiles_pct_dist1()
    );
    println!("tiles RE could skip        : {}", r.tiles_skipped);
    let overhead = r.total_cycles() as f64 / b.total_cycles() as f64 - 1.0;
    println!(
        "RE execution overhead      : {:.3}% (paper: <1%)",
        100.0 * overhead
    );
    let e_overhead = r.energy.total_pj() / b.energy.total_pj() - 1.0;
    println!(
        "RE energy overhead         : {:.3}% (paper: <1%)",
        100.0 * e_overhead
    );
    println!(
        "signature stalls           : {} cycles ({:.3}% of total)",
        report.su_stats.stall_cycles,
        100.0 * report.su_stats.stall_cycles as f64 / b.total_cycles() as f64
    );
    assert!(overhead < 0.02, "RE must stay cheap when useless");
}
