//! Trace capture and replay: snapshot a benchmark's command stream to a
//! `.retrace` file, reload it, and verify the simulator reproduces the
//! original run bit-for-bit — plus dump a rendered frame as a PPM image.
//!
//! ```sh
//! cargo run --release --example capture_replay
//! ```

use rendering_elimination::core::{Scene, SimOptions, Simulator};
use rendering_elimination::gpu::hooks::NullHooks;
use rendering_elimination::gpu::{image, Gpu, GpuConfig};
use rendering_elimination::trace::{capture, Trace, TraceScene};
use rendering_elimination::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GpuConfig {
        width: 400,
        height: 256,
        tile_size: 16,
        ..Default::default()
    };
    let frames = 10;

    // 1. Capture the `tib` benchmark into a trace file.
    let mut bench = workloads::by_alias("tib").expect("tib is part of the suite");
    let trace = capture(bench.scene.as_mut(), cfg, frames);
    let path = std::env::temp_dir().join("tib.retrace");
    trace.save(&path)?;
    let size = std::fs::metadata(&path)?.len();
    println!(
        "captured {} frames of tib -> {} ({:.1} MiB)",
        frames,
        path.display(),
        size as f64 / (1 << 20) as f64
    );

    // 2. Reload and replay through the simulator; compare with a live run.
    let reloaded = Trace::load(&path)?;
    let mut replay = TraceScene::with_name(reloaded, "tib-replay");
    let mut sim_replay = Simulator::new(SimOptions {
        gpu: cfg,
        ..SimOptions::default()
    });
    let from_trace = sim_replay.run(&mut replay, frames);

    let mut live_bench = workloads::by_alias("tib").expect("tib exists");
    let mut sim_live = Simulator::new(SimOptions {
        gpu: cfg,
        ..SimOptions::default()
    });
    let live = sim_live.run(live_bench.scene.as_mut(), frames);

    println!(
        "live    : {:>12} baseline cycles, {:>6} tiles skipped",
        live.baseline.total_cycles(),
        live.re.tiles_skipped
    );
    println!(
        "replayed: {:>12} baseline cycles, {:>6} tiles skipped",
        from_trace.baseline.total_cycles(),
        from_trace.re.tiles_skipped
    );
    assert_eq!(
        live.baseline.total_cycles(),
        from_trace.baseline.total_cycles()
    );
    assert_eq!(live.re.tiles_skipped, from_trace.re.tiles_skipped);
    println!("replay is bit-identical to the live scene");

    // 3. Render frame 0 from the trace and dump it as a PPM image.
    let mut gpu = Gpu::new(cfg);
    let mut scene = TraceScene::new(Trace::load(&path)?);
    scene.init(gpu.textures_mut());
    let frame = scene.frame(0);
    let geo = gpu.run_geometry(&frame, &mut NullHooks);
    for t in 0..gpu.tile_count() {
        gpu.rasterize_tile(&frame, &geo, t, &mut NullHooks);
    }
    let img_path = std::env::temp_dir().join("tib_frame0.ppm");
    image::write_ppm(gpu.framebuffer().back(), cfg.width, cfg.height, &img_path)?;
    println!(
        "frame 0 rendered to {} (fingerprint {:#018x})",
        img_path.display(),
        image::fingerprint(gpu.framebuffer().back(), cfg.width, cfg.height)
    );
    Ok(())
}
