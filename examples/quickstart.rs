//! Quickstart: define a tiny scene, run the simulator, and see Rendering
//! Elimination skip redundant tiles.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rendering_elimination::core::{Scene, SimOptions, Simulator};
use rendering_elimination::gpu::api::{DrawCall, FrameDesc, PipelineState, Vertex};
use rendering_elimination::gpu::GpuConfig;
use rendering_elimination::math::{Mat4, Vec4};

/// A scene with a static backdrop triangle and one bouncing triangle.
struct Bouncer;

impl Scene for Bouncer {
    fn frame(&mut self, index: usize) -> FrameDesc {
        let tri = |positions: [(f32, f32); 3], color: Vec4| {
            let vertices = positions
                .iter()
                .map(|&(x, y)| Vertex::new(vec![Vec4::new(x, y, 0.0, 1.0), color]))
                .collect();
            DrawCall {
                state: PipelineState::flat_2d(),
                constants: Mat4::IDENTITY.cols.to_vec(),
                vertices,
            }
        };
        let mut frame = FrameDesc::new();
        // Static backdrop: identical every frame → its tiles are skipped.
        frame.drawcalls.push(tri(
            [(-0.95, -0.95), (0.95, -0.95), (-0.95, 0.95)],
            Vec4::new(0.2, 0.3, 0.8, 1.0),
        ));
        // A small triangle bouncing in the top-right corner.
        let y = 0.5 + 0.3 * (index as f32 * 0.4).sin();
        frame.drawcalls.push(tri(
            [(0.5, y), (0.9, y), (0.7, y + 0.25)],
            Vec4::new(1.0, 0.8, 0.1, 1.0),
        ));
        frame
    }

    fn name(&self) -> &str {
        "bouncer"
    }
}

fn main() {
    let mut sim = Simulator::new(SimOptions {
        gpu: GpuConfig {
            width: 256,
            height: 256,
            tile_size: 16,
            ..Default::default()
        },
        ..SimOptions::default()
    });
    let report = sim.run(&mut Bouncer, 30);

    let base = &report.baseline;
    let re = &report.re;
    println!(
        "workload            : {} ({} frames, {} tiles/frame)",
        report.name, report.frames, report.tile_count
    );
    println!(
        "baseline cycles     : {:>12} (geometry {} + raster {})",
        base.total_cycles(),
        base.geometry_cycles,
        base.raster_cycles
    );
    println!(
        "RE cycles           : {:>12} (geometry {} + raster {})",
        re.total_cycles(),
        re.geometry_cycles,
        re.raster_cycles
    );
    println!(
        "speedup             : {:.2}x",
        base.total_cycles() as f64 / re.total_cycles() as f64
    );
    println!(
        "tiles skipped       : {} of {} ({:.1}%)",
        re.tiles_skipped,
        re.tiles_skipped + re.tiles_rendered,
        100.0 * re.tiles_skipped as f64 / (re.tiles_skipped + re.tiles_rendered) as f64
    );
    println!(
        "energy vs baseline  : {:.1}%",
        100.0 * re.energy.total_pj() / base.energy.total_pj()
    );
    println!(
        "DRAM traffic ratio  : {:.1}%",
        100.0 * re.dram.total_bytes() as f64 / base.dram.total_bytes() as f64
    );
    println!(
        "CRC false positives : {} (a nonzero value would be a CRC32 collision)",
        report.false_positives
    );
    assert_eq!(report.false_positives, 0);
}
