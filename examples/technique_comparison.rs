//! Side-by-side comparison of Rendering Elimination against Transaction
//! Elimination and PFR fragment memoization on a slice of the suite —
//! a compact reproduction of the paper's Figs. 16 and 17.
//!
//! ```sh
//! cargo run --release --example technique_comparison [alias ...]
//! ```

use rendering_elimination::core::{SimOptions, Simulator};
use rendering_elimination::gpu::GpuConfig;
use rendering_elimination::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let aliases: Vec<&str> = if args.is_empty() {
        vec!["ccs", "hop", "mst", "tib"]
    } else {
        args.iter().map(String::as_str).collect()
    };

    println!(
        "{:<6} {:>11} {:>11} {:>12} {:>12} {:>12}",
        "bench", "RE cycles", "TE cycles", "RE energy", "TE energy", "frags RE/memo"
    );
    for alias in aliases {
        let Some(mut bench) = workloads::by_alias(alias) else {
            eprintln!("unknown benchmark alias: {alias}");
            std::process::exit(2);
        };
        let mut sim = Simulator::new(SimOptions {
            gpu: GpuConfig {
                width: 598,
                height: 384,
                tile_size: 16,
                ..Default::default()
            },
            ..SimOptions::default()
        });
        let report = sim.run(bench.scene.as_mut(), 48);
        let b = &report.baseline;
        let norm_c = |c: u64| c as f64 / b.total_cycles() as f64;
        let norm_e = |e: f64| e / b.energy.total_pj();
        let frags_base = b.fragments_shaded.max(1) as f64;
        println!(
            "{:<6} {:>11.3} {:>11.3} {:>12.3} {:>12.3} {:>6.3}/{:.3}",
            alias,
            norm_c(report.re.total_cycles()),
            norm_c(report.te.total_cycles()),
            norm_e(report.re.energy.total_pj()),
            norm_e(report.te.energy.total_pj()),
            report.re.fragments_shaded as f64 / frags_base,
            report.memo.fragments_shaded as f64 / frags_base,
        );
    }
    println!();
    println!("(all numbers normalized to the baseline GPU; lower is better)");
    println!("(note hop: memoization wins on fragments — the paper's one exception)");
}
