//! A puzzle-game workload (the `ccs` Candy-Crush-like benchmark): the
//! motivating case of the paper — a mostly static screen where Rendering
//! Elimination skips the bulk of the Raster Pipeline.
//!
//! ```sh
//! cargo run --release --example puzzle_game
//! ```

use rendering_elimination::core::{SimOptions, Simulator};
use rendering_elimination::gpu::GpuConfig;
use rendering_elimination::workloads;

fn main() {
    let mut bench = workloads::by_alias("ccs").expect("ccs is part of the suite");
    println!(
        "benchmark: {} (stand-in for {}, {})",
        bench.alias, bench.stands_for, bench.genre
    );

    let mut sim = Simulator::new(SimOptions {
        gpu: GpuConfig {
            width: 598,
            height: 384,
            tile_size: 16,
            ..Default::default()
        },
        ..SimOptions::default()
    });
    let report = sim.run(bench.scene.as_mut(), 48);

    let b = &report.baseline;
    let r = &report.re;
    let t = &report.te;
    println!();
    println!("{:<26} {:>14} {:>14} {:>14}", "", "baseline", "RE", "TE");
    println!(
        "{:<26} {:>14} {:>14} {:>14}",
        "total cycles",
        b.total_cycles(),
        r.total_cycles(),
        t.total_cycles()
    );
    println!(
        "{:<26} {:>13.1}% {:>13.1}% {:>13.1}%",
        "energy (vs baseline)",
        100.0,
        100.0 * r.energy.total_pj() / b.energy.total_pj(),
        100.0 * t.energy.total_pj() / b.energy.total_pj()
    );
    println!(
        "{:<26} {:>13.1}% {:>13.1}% {:>13.1}%",
        "DRAM bytes (vs baseline)",
        100.0,
        100.0 * r.dram.total_bytes() as f64 / b.dram.total_bytes() as f64,
        100.0 * t.dram.total_bytes() as f64 / b.dram.total_bytes() as f64
    );
    println!();
    let k = &report.classes;
    println!("tile classification over {} frames:", report.frames);
    println!(
        "  equal colors & inputs   : {:>6.1}%  (RE skips these)",
        k.pct(k.eq_color_eq_input)
    );
    println!(
        "  equal colors, new inputs: {:>6.1}%  (false negatives)",
        k.pct(k.eq_color_diff_input)
    );
    println!(
        "  changed tiles           : {:>6.1}%",
        k.pct(k.diff_color_diff_input)
    );
    println!("  CRC collisions          : {}", k.diff_color_eq_input);
    println!();
    println!(
        "signature unit: {} compute cycles, {} stall cycles ({}% of geometry)",
        report.su_stats.compute_cycles,
        report.su_stats.stall_cycles,
        100 * report.su_stats.stall_cycles / b.geometry_cycles.max(1)
    );
}
