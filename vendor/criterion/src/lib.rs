//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real `criterion` cannot
//! be fetched. This harness keeps the same surface the workspace's benches
//! use (`criterion_group!`/`criterion_main!`, groups, throughput,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) and measures with
//! plain `std::time::Instant`: a short warm-up, then a fixed number of
//! samples, reporting the median per-iteration time (and MB/s when a
//! byte-throughput is set). No statistics, plots or baselines — just honest
//! numbers on stderr-free stdout.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier (`BenchmarkId::from_parameter(...)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units the per-iteration throughput line is derived from.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Times `routine`, called once per sample after a warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up (and monomorphization warm caches)
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn report(group: &str, id: &str, time: Duration, throughput: Option<Throughput>) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let per = match throughput {
        Some(Throughput::Bytes(b)) if time > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                b as f64 / time.as_secs_f64() / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if time > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / time.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {label:<50} {:>12.3?}{per}", time);
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        report(&self.name, &id.to_string(), b.median(), self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.median(), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_count,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        report("", &id.to_string(), b.median(), None);
        self
    }
}

/// Groups bench functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
