//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real `criterion` cannot
//! be fetched. This harness keeps the same surface the workspace's benches
//! use (`criterion_group!`/`criterion_main!`, groups, throughput,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) and measures with
//! plain `std::time::Instant`: a short warm-up, then a fixed number of
//! samples, reporting min/median/max per-iteration time, an IQR-rule
//! outlier count (Tukey fences at 1.5×IQR over the sample distribution, the
//! real criterion's rule) and a rate when a throughput is set. No plots or
//! baselines — just honest numbers on stderr-free stdout. The spread makes
//! noisy runs visible: trust medians whose min/max bracket is tight and
//! whose outlier count is low.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier (`BenchmarkId::from_parameter(...)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units the per-iteration throughput line is derived from.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

/// Summary statistics of one benchmark's samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStats {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Samples outside the Tukey fences (1.5 × IQR beyond the quartiles).
    pub outliers: usize,
    /// Total samples taken.
    pub samples: usize,
}

impl SampleStats {
    /// Computes the summary of a sample set (empty ⇒ all-zero stats).
    pub fn from_samples(samples: &mut [Duration]) -> SampleStats {
        if samples.is_empty() {
            return SampleStats {
                min: Duration::ZERO,
                median: Duration::ZERO,
                max: Duration::ZERO,
                outliers: 0,
                samples: 0,
            };
        }
        samples.sort();
        let n = samples.len();
        // Quartiles by the nearest-rank-ish midpoint rule; exact convention
        // matters less than being deterministic and monotone.
        let q = |frac_num: usize, frac_den: usize| -> Duration {
            let idx = (n - 1) * frac_num / frac_den;
            samples[idx]
        };
        let (q1, median, q3) = (q(1, 4), q(2, 4), q(3, 4));
        let iqr = q3.saturating_sub(q1);
        let fence = iqr + iqr / 2; // 1.5 × IQR without leaving Duration
        let lo = q1.saturating_sub(fence);
        let hi = q3 + fence;
        let outliers = samples.iter().filter(|&&s| s < lo || s > hi).count();
        SampleStats {
            min: samples[0],
            median,
            max: samples[n - 1],
            outliers,
            samples: n,
        }
    }
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Times `routine`, called once per sample after a warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up (and monomorphization warm caches)
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn stats(&mut self) -> SampleStats {
        SampleStats::from_samples(&mut self.samples)
    }
}

fn report(group: &str, id: &str, stats: SampleStats, throughput: Option<Throughput>) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let time = stats.median;
    let per = match throughput {
        Some(Throughput::Bytes(b)) if time > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                b as f64 / time.as_secs_f64() / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if time > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / time.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {label:<50} {:>12.3?}{per}  [min {:.3?}, max {:.3?}, {} outlier{} / {}]",
        time,
        stats.min,
        stats.max,
        stats.outliers,
        if stats.outliers == 1 { "" } else { "s" },
        stats.samples,
    );
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        report(&self.name, &id.to_string(), b.stats(), self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.stats(), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_count,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        report("", &id.to_string(), b.stats(), None);
        self
    }
}

/// Groups bench functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn stats_min_median_max() {
        let mut s = vec![ms(5), ms(1), ms(3)];
        let st = SampleStats::from_samples(&mut s);
        assert_eq!(st.min, ms(1));
        assert_eq!(st.median, ms(3));
        assert_eq!(st.max, ms(5));
        assert_eq!(st.outliers, 0);
        assert_eq!(st.samples, 3);
    }

    #[test]
    fn iqr_rule_flags_the_spike() {
        // Nine tight samples and one 100× spike: the spike is an outlier.
        let mut s: Vec<Duration> = (10..19).map(ms).collect();
        s.push(ms(1000));
        let st = SampleStats::from_samples(&mut s);
        assert_eq!(st.outliers, 1);
        assert_eq!(st.max, ms(1000));
        assert!(st.median < ms(20));
    }

    #[test]
    fn uniform_samples_have_no_outliers() {
        let mut s: Vec<Duration> = (1..=20).map(ms).collect();
        let st = SampleStats::from_samples(&mut s);
        assert_eq!(st.outliers, 0);
    }

    #[test]
    fn empty_samples_are_all_zero() {
        let st = SampleStats::from_samples(&mut []);
        assert_eq!(st.median, Duration::ZERO);
        assert_eq!(st.samples, 0);
    }
}
