//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real `proptest` cannot
//! be fetched. This crate reimplements the subset the workspace's property
//! tests use — the `proptest!` macro, range/`any`/array/collection/tuple
//! strategies, `prop_assert*` and `prop_assume!` — as straightforward
//! deterministic random sampling. There is no shrinking: a failing case
//! panics with the assertion message and the case number, which is enough to
//! reproduce (the RNG stream is a pure function of the test name and case
//! index).

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps the simulator-heavy
            // suites fast while still exercising plenty of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream, seeded per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                x: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    // `impl Strategy` return values are often built from tuples of
    // strategies; strategies themselves are passed by value but generated
    // through `&self`, so a blanket reference impl keeps composition easy.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    self.start.wrapping_add((rng.next_u64() as i128).rem_euclid(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    self.start().wrapping_add((rng.next_u64() as i128).rem_euclid(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, broad but tame: the workspace never relies on
            // NaN/infinity generation.
            ((rng.unit_f64() - 0.5) * 2e6) as f32
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `N` independent draws from the same element strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),*) => {$(
            /// An array strategy of that many independent elements.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }
    uniform_fns!(uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5, uniform6 => 6);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element counts a [`vec()`] strategy may produce.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `size`-many draws from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: `fn name(binding in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __case: u32 = 0;
            while __accepted < __cfg.cases {
                __case += 1;
                assert!(
                    __case < __cfg.cases.saturating_mul(16).max(1024),
                    "proptest: too many rejected cases in {__name}"
                );
                let mut __rng = $crate::test_runner::TestRng::for_case(__name, __case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{__name}: case {__case} failed: {msg}");
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a == __b, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($a), stringify!($b), __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a != __b, $($fmt)+);
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 3u32..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn arrays_and_vecs(a in crate::array::uniform4(0u8..=255), v in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert_eq!(a.len(), 4);
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_compose(t in (0u8..4, -1.0f32..1.0)) {
            prop_assert!(t.0 < 4);
            prop_assert_ne!(t.1, 2.0);
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case("x", 1);
        let mut b = TestRng::for_case("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 2);
        assert_ne!(TestRng::for_case("x", 1).next_u64(), c.next_u64());
    }
}
