//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access, so the real
//! `rand` cannot be fetched from crates.io. The workloads only need a
//! deterministic seedable generator with `gen`/`gen_range`/`gen_bool`; this
//! crate provides exactly that subset, backed by splitmix64 seeding and a
//! xoshiro256++ core — statistically solid and fully reproducible, which is
//! the property the benchmark scenes actually rely on.
//!
//! Determinism contract: for a given seed, the value sequence is frozen.
//! Changing it would shift every procedurally generated scene and invalidate
//! the golden-image fingerprints in `crates/workloads/tests/golden.rs`.

#![forbid(unsafe_code)]

pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // splitmix64 stream expands the seed into the full state, as the
            // xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_core(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::SmallRng;

/// Construction from seeds (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng::from_u64_seed(seed)
    }
}

/// Types `Rng::gen` can produce.
pub trait Random: Sized {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let span = (high as i128 - low as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                low.wrapping_add((rng.next_u64() as i128).rem_euclid(span) as $t)
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, i8, i16, i32, i64, isize);

// u64/usize spans can exceed i128 precision games never need; keep it simple
// and separate so the cast math stays valid.
macro_rules! impl_sample_wide {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let span = (high - low) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                low + (rng.next_u64() as $t) % span
            }
        }
    )*};
}
impl_sample_wide!(u64, usize);

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f32::random(rng)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f64::random(rng)
    }
}

/// Range forms `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing generator interface.
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = r.gen_range(0..16u8);
            assert!(x < 16);
            let f = r.gen_range(-1.5f32..1.5);
            assert!((-1.5..1.5).contains(&f));
            let i: u8 = r.gen_range(0u8..=255);
            let _ = i;
        }
    }

    #[test]
    fn gen_produces_all_supported_types() {
        let mut r = SmallRng::seed_from_u64(1);
        let _: (u8, u32, bool) = (r.gen(), r.gen(), r.gen());
        let f: f32 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
