//! Facade crate for the Rendering Elimination reproduction.
//!
//! Re-exports the public API of every workspace crate so downstream users
//! (and the `examples/` and `tests/` directories) can depend on a single
//! crate:
//!
//! * [`crc`] — CRC32 signature machinery and hardware-unit models.
//! * [`math`] — vectors, matrices, colors, rectangles.
//! * [`gpu`] — the functional tile-based-rendering GPU.
//! * [`timing`] — cycle, cache, DRAM and energy models.
//! * [`core`] — the Rendering Elimination technique, its baselines
//!   (Transaction Elimination, PFR fragment memoization) and the unified
//!   simulator driver.
//! * [`workloads`] — the ten synthetic benchmark scenes (paper Table II).
//! * [`trace`] — command-stream capture and replay (`.retrace` format).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use re_core as core;
pub use re_crc as crc;
pub use re_gpu as gpu;
pub use re_math as math;
pub use re_timing as timing;
pub use re_trace as trace;
pub use re_workloads as workloads;
